"""Shared toolkit for building deterministic reference mappings.

Every modeled system ships a hand-derived "reference mapping" mirroring
its natural dataflow (the mappings a designer would publish), built from
the same handful of moves: greedily *take* factors of the remaining
problem dimensions into spatial fanouts and accumulation budgets, size a
buffer tile by *occupancy* and shrink it until it fits, push the residue
to DRAM, and emit temporal *loops* in a protection-ordered permutation.
This module is the single home of those moves — previously copy-pasted
between :mod:`~repro.systems.albireo` and :mod:`~repro.systems.crossbar`
— so a new system's reference mapping is a short declarative script over
the toolkit rather than a 100-line re-derivation.

The helpers are exact ports of the originals: systems built on them
produce byte-identical mappings (and therefore byte-identical figure
outputs) to the pre-toolkit code.
"""

from __future__ import annotations

from typing import Dict, Mapping as TMapping, Sequence, Tuple

from repro.mapping.factorization import ceil_div, largest_divisor_at_most
from repro.mapping.mapper import _largest_fitting_factor
from repro.mapping.mapping import TemporalLoop, problem_dims
from repro.workloads.dataspace import DataSpace, dataspace_tile_size
from repro.workloads.dims import Dim
from repro.workloads.layer import ConvLayer

_W = DataSpace.WEIGHTS
_I = DataSpace.INPUTS
_O = DataSpace.OUTPUTS

#: Default shrink preference when a buffer tile exceeds capacity: halve
#: the largest non-kernel dimension (kernel dims are small and usually
#: pinned to spatial hardware).
DEFAULT_SHRINK_ORDER: Tuple[Dim, ...] = (Dim.N, Dim.M, Dim.C, Dim.P, Dim.Q)


class FactorTaker:
    """Greedy factor allocation over a layer's remaining problem dims.

    Starts from :func:`~repro.mapping.mapping.problem_dims` and hands out
    factors to spatial fanouts / accumulation budgets, ceil-dividing the
    remainder so the residual nest always covers the problem.

    ``mode="fill"`` pads for parallelism (largest factor whose padded
    product fits the cap); ``mode="divisor"`` takes the largest exact
    divisor (no idle iterations).
    """

    def __init__(self, layer: ConvLayer) -> None:
        self.dims = problem_dims(layer)
        self.remaining: Dict[Dim, int] = dict(self.dims)

    def take(self, dim: Dim, cap: int, mode: str = "fill") -> int:
        """Allocate a factor of ``dim`` up to ``cap``; shrink the residue."""
        cap = min(self.remaining[dim], cap)
        if mode == "divisor":
            factor = largest_divisor_at_most(self.remaining[dim], cap)
        else:
            factor = _largest_fitting_factor(self.remaining[dim], cap)
        self.remaining[dim] = ceil_div(self.remaining[dim], factor)
        return factor

    def take_budgeted(
        self,
        order: Sequence[Dim],
        budget: int,
        mode: str = "fill",
    ) -> Dict[Dim, int]:
        """Fill a shared budget (a fanout size, an accumulation depth)
        across several dimensions in preference order.

        Each taken factor divides the remaining budget; factors of 1 are
        omitted from the result (loop-transparent).
        """
        factors: Dict[Dim, int] = {}
        for dim in order:
            if budget <= 1:
                break
            factor = self.take(dim, budget, mode=mode)
            if factor > 1:
                factors[dim] = factor
                budget //= factor
        return factors

    def residual_after(
            self, inner_factors: TMapping[Dim, int]) -> Dict[Dim, int]:
        """Residue left for an outer level once ``inner_factors`` (taken
        from the current remainder) are placed at an inner one."""
        return {dim: ceil_div(self.remaining[dim],
                              inner_factors.get(dim, 1))
                for dim in self.dims}


def combined_bounds(dims: TMapping[Dim, int],
                    *factor_maps: TMapping[Dim, int]) -> Dict[Dim, int]:
    """Per-dimension tile bounds: the product of several factor maps."""
    bounds: Dict[Dim, int] = {}
    for dim in dims:
        product = 1
        for factors in factor_maps:
            product *= factors.get(dim, 1)
        bounds[dim] = product
    return bounds


def tile_occupancy_bits(layer: ConvLayer,
                        bounds: TMapping[Dim, int]) -> float:
    """Bits a buffer holding one tile of every dataspace must provide."""
    bits = 0.0
    for dataspace in (_W, _I, _O):
        width = (layer.bits_per_weight if dataspace is _W
                 else layer.bits_per_activation)
        bits += dataspace_tile_size(dataspace, bounds,
                                    layer.strides) * width
    return bits


def shrink_to_fit(
    layer: ConvLayer,
    dims: TMapping[Dim, int],
    gb_factors: Dict[Dim, int],
    capacity_bits: float,
    *inner_factor_maps: TMapping[Dim, int],
    shrink_order: Tuple[Dim, ...] = DEFAULT_SHRINK_ORDER,
    max_rounds: int = 256,
) -> Dict[Dim, int]:
    """Halve the largest buffer-tile factor until the tile fits.

    ``inner_factor_maps`` are the spatial/accumulation factors below the
    buffer, which multiply into the tile's bounds.  Mutates and returns
    ``gb_factors``.
    """
    for _ in range(max_rounds):
        bounds = combined_bounds(dims, gb_factors, *inner_factor_maps)
        if tile_occupancy_bits(layer, bounds) <= capacity_bits:
            break
        largest = max(shrink_order, key=lambda d: gb_factors.get(d, 1))
        if gb_factors.get(largest, 1) <= 1:
            break
        gb_factors[largest] = ceil_div(gb_factors[largest], 2)
    return gb_factors


def temporal_loops(factors: TMapping[Dim, int],
                   order: Tuple[Dim, ...]) -> Tuple[TemporalLoop, ...]:
    """Loops for ``factors`` in ``order``, dropping transparent bound-1s."""
    return tuple(TemporalLoop(dim, factors[dim])
                 for dim in order if factors.get(dim, 1) > 1)


def dram_order_protecting(layer: ConvLayer,
                          protects: str = "auto") -> Tuple[Dim, ...]:
    """The DRAM loop permutation keeping one tensor resident.

    ``"weights"`` / ``"inputs"`` keep the named tensor's irrelevant dims
    innermost so its tiles below are fetched once; ``"outputs"`` keeps
    reduction dims innermost so output tiles finish accumulating before
    eviction (no partial-sum spills).  ``"auto"`` protects the larger of
    weights and inputs — the heuristic every reference mapping started
    from.
    """
    if protects == "auto":
        protects = ("weights" if layer.weight_bits >= layer.input_bits
                    else "inputs")
    if protects == "weights":
        return (Dim.C, Dim.M, Dim.R, Dim.S, Dim.Q, Dim.P, Dim.N)
    if protects == "outputs":
        return (Dim.N, Dim.P, Dim.Q, Dim.M, Dim.C, Dim.R, Dim.S)
    return (Dim.R, Dim.S, Dim.C, Dim.Q, Dim.P, Dim.N, Dim.M)


#: The buffer-level permutation every system uses: reduction dims
#: innermost so outputs finish accumulating before eviction.
GB_ORDER: Tuple[Dim, ...] = (Dim.N, Dim.M, Dim.P, Dim.Q, Dim.C, Dim.R, Dim.S)
