"""The single system registry: name -> builder bundle.

Every front-end resolves modeled systems here — the sweep engine's job
identity and worker construction (:mod:`repro.engine.jobs`,
:mod:`repro.engine.executor`), the CLI's ``--system`` flag, the
cross-system comparison experiment, and the conformance test suite — so
adding an accelerator is one :func:`register_system` call, after which it
is sweepable, cacheable, comparable, and contract-tested with no other
code changes.

Built-in systems (:mod:`~repro.systems.albireo`,
:mod:`~repro.systems.crossbar`, :mod:`~repro.systems.wdm_delay`)
self-register on import; :func:`system_entries` imports them lazily on
first use, so importing the engine never drags in (or cycles with) the
systems layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SpecError

#: Column spec for the CLI sweep table: (header, getter over the config).
SweepColumn = Tuple[str, Callable[[Any], Any]]


@dataclass(frozen=True)
class SystemEntry:
    """Everything a front-end needs to drive one modeled system by name.

    ``build_architecture`` must be a pure function of the config — the
    engine hashes its output into job identities, and
    :func:`repro.systems.base.build_cached` memoizes it.
    ``buckets`` is the system's dataspace-conversion
    :class:`~repro.model.buckets.BucketScheme` whose group names align
    across systems, so cross-system figures stack comparably.
    ``default_sweep`` builds the configuration grid behind
    ``repro sweep --system <name>``; ``sweep_columns`` labels that grid's
    axes in the result table.
    """

    name: str
    config_type: type
    system_type: type
    build_architecture: Callable[[Any], Any]
    build_energy_table: Callable[[Any], Any]
    buckets: Any
    #: Whether the constructor accepts the engine's duck-typed ``store``
    #: (see :class:`repro.engine.cache.SystemStore`).  Systems built on
    #: :class:`~repro.systems.base.PhotonicSystem` always do.
    supports_store: bool = True
    description: str = ""
    default_sweep: Optional[Callable[[], Sequence[Any]]] = None
    sweep_columns: Tuple[SweepColumn, ...] = field(default=())


_REGISTRY: Dict[str, SystemEntry] = {}
_BUILTINS = ("repro.systems.albireo", "repro.systems.crossbar",
             "repro.systems.wdm_delay")
_builtins_loaded = False


def register_system(entry: SystemEntry) -> SystemEntry:
    """Add (or replace) a system in the registry; returns the entry."""
    if not entry.name:
        raise SpecError("system entry must have a non-empty name")
    _REGISTRY[entry.name] = entry
    return entry


def _load_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    import importlib

    for module in _BUILTINS:
        importlib.import_module(module)
    _builtins_loaded = True


def system_entries() -> Dict[str, SystemEntry]:
    """All registered systems (built-ins loaded on first use), by name."""
    _load_builtins()
    return dict(_REGISTRY)


def system_names() -> List[str]:
    """Registered system tags, in registration order."""
    return list(system_entries())


def get_system(name: str) -> SystemEntry:
    """The registry entry for ``name``; raises SpecError when unknown."""
    entries = system_entries()
    entry = entries.get(name)
    if entry is None:
        raise SpecError(
            f"unknown system {name!r}; options: {sorted(entries)}")
    return entry


def create_system(name: str, config: Optional[Any] = None,
                  store: Optional[object] = None) -> Any:
    """Construct a ready-to-evaluate system instance by registry name."""
    entry = get_system(name)
    if store is not None and entry.supports_store:
        return entry.system_type(config, store=store)
    return entry.system_type(config)


def infer_system(config: Any) -> Optional[str]:
    """The registry tag whose config type matches ``config`` (or None)."""
    for tag, entry in system_entries().items():
        if isinstance(config, entry.config_type):
            return tag
    return None
