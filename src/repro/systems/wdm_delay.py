"""A WDM delay-buffer photonic CNN accelerator.

The third full system modeled by this library, representative of the
WDM-with-delay-line convolution family (Xu et al., 2019's optical CNN
accelerator with delay buffers; the broader "time-wavelength interleaved"
photonic convolvers).  Where Albireo builds its convolution window from a
locally-connected electrical site array and the crossbar has no window
structure at all, this design builds it *in time*: spiral waveguide delay
buffers offset copies of one modulated input stream so that, at any
instant, the taps see the R x S window pixels simultaneously.

Organization — ``tiles`` x ``output_lanes`` x (``delay taps`` x
``wavelengths``) ring weight banks:

* **Weights** are converted once per residency into analog ring biases —
  weight-stationary like the crossbar: DRAM -> global buffer -> **DE/AE
  DAC** -> sample-and-hold **ring bank** of ``output_lanes x taps x
  wavelengths`` values per tile, refreshed within ``hold_cycles``.
* **Inputs** are converted once per element and reused twice over: the
  modulated WDM stream (DAC -> per-wavelength **AE/AO ring modulator**,
  one input channel per wavelength) enters the **delay-line buffer — a
  storage level in the AO domain** — whose taps feed every window
  position from one conversion, and is broadcast across all
  ``output_lanes`` (M-irrelevant, a true multicast).  This is the window
  reuse Albireo pays per-MAC modulation for and the crossbar cannot
  express.
* **Outputs**: each lane's photodiode (**AO/AE**) sums taps and
  wavelengths optically; an analog integrator accumulates up to
  ``integration_depth`` partials before the lane ADC (**AE/DE**) fires.

The structural trade-offs the model reproduces: near-zero weight
conversion energy and free window reuse, against long spiral delay lines
(priced as waveguide area and as extra optical loss charged to the
laser), sample-and-hold refresh limits, and — like any weight-stationary
design — no analog accumulation across channel chunks (the bank cannot
hold two chunks' weights at once).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.arch.domains import Conversion, Domain
from repro.arch.hierarchy import (
    Architecture,
    ComputeAction,
    ComputeLevel,
    ConverterStage,
    SpatialFanout,
    StorageLevel,
)
from repro.energy.estimator import ComponentSpec, build_table
from repro.energy.scaling import (
    AGGRESSIVE,
    CONSERVATIVE,
    ScalingScenario,
)
from repro.energy.table import EnergyTable
from repro.exceptions import SpecError
from repro.mapping.constraints import MappingConstraints, StorageConstraint
from repro.mapping.mapping import FanoutMapping, LevelMapping, Mapping
from repro.model.buckets import BucketScheme, component_rule
from repro.systems.base import PhotonicSystem
from repro.systems.refmap import (
    GB_ORDER,
    FactorTaker,
    combined_bounds,
    dram_order_protecting,
    shrink_to_fit,
    temporal_loops,
    tile_occupancy_bits,
)
from repro.systems.registry import SystemEntry, register_system
from repro.units import KIBIBYTE
from repro.workloads.dataspace import DataSpace
from repro.workloads.dims import Dim
from repro.workloads.layer import ConvLayer

_W = DataSpace.WEIGHTS
_I = DataSpace.INPUTS
_O = DataSpace.OUTPUTS


@dataclass(frozen=True)
class WdmDelayConfig:
    """Parameters of one WDM delay-buffer instance.

    Defaults give 8 x 8 x 9 x 8 = 4608 MACs/cycle at 5 GHz — between the
    default Albireo (6480) and crossbar (4096) for comparable silicon.
    """

    scenario: ScalingScenario = CONSERVATIVE
    tiles: int = 8
    #: Parallel output channels per tile; each lane has its own ring bank
    #: and receiver but shares the delayed input stream.
    output_lanes: int = 8
    #: WDM comb lines: one input channel per wavelength.
    wavelengths: int = 8
    #: Delay taps per kernel axis (3 -> a 3x3 window built in time).
    delay_taps_per_axis: int = 3
    #: Analog integration depth before each lane ADC fires.
    integration_depth: int = 4
    #: Symbols a sample-and-hold ring bias survives before re-conversion.
    hold_cycles: int = 4096
    #: Input row length (symbols) one delay spiral must buffer; sets the
    #: spiral length priced into area and the extra loss charged to the
    #: laser.
    line_buffer_symbols: int = 64
    #: Propagation loss of the delay spirals, charged on top of the
    #: scenario's fixed link loss (the design's headline tax).
    delay_loss_db: float = 1.5
    clock_ghz: float = 5.0
    global_buffer_kib: int = 1024
    global_buffer_banks: int = 16
    dram_technology: str = "ddr4"
    bits: int = 8

    def __post_init__(self) -> None:
        for name in ("tiles", "output_lanes", "wavelengths",
                     "delay_taps_per_axis", "integration_depth",
                     "hold_cycles", "line_buffer_symbols",
                     "global_buffer_kib", "global_buffer_banks", "bits"):
            if getattr(self, name) < 1:
                raise SpecError(f"WdmDelayConfig.{name} must be >= 1")
        if self.delay_loss_db < 0:
            raise SpecError("WdmDelayConfig.delay_loss_db must be >= 0")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def delay_taps(self) -> int:
        return self.delay_taps_per_axis ** 2

    @property
    def peak_macs_per_cycle(self) -> int:
        return (self.tiles * self.output_lanes * self.delay_taps
                * self.wavelengths)

    @property
    def global_buffer_bits(self) -> float:
        return float(self.global_buffer_kib * KIBIBYTE)

    @property
    def bank_bits(self) -> float:
        """Per-tile ring-bank capacity: one weight per ring, all lanes."""
        return float(self.output_lanes * self.delay_taps
                     * self.wavelengths * self.bits)

    @property
    def delay_buffer_bits(self) -> float:
        """Per-tile delay-line capacity: ``delay_taps_per_axis`` rows of
        ``line_buffer_symbols``, one symbol per wavelength per position."""
        buffered = self.delay_taps_per_axis * self.line_buffer_symbols
        return float(buffered * self.wavelengths * self.bits)

    @property
    def delay_spiral_mm(self) -> float:
        """Total spiral waveguide length per tile (area accounting).

        One symbol at ``clock_ghz`` occupies ``c / (n_g * f)`` of
        waveguide (group index ~4.2); each kernel row beyond the first
        needs a ``line_buffer_symbols``-deep spiral, each column tap a
        single-symbol stub.
        """
        mm_per_symbol = 299.792458 / 4.2 / self.clock_ghz
        # ^ c [mm/ns] / n_g / f [GHz]  ==  mm per symbol period
        row_spirals = ((self.delay_taps_per_axis - 1)
                       * self.line_buffer_symbols)
        column_stubs = (self.delay_taps_per_axis
                        * (self.delay_taps_per_axis - 1)) // 2
        return (row_spirals + column_stubs) * mm_per_symbol

    def with_scenario(self, scenario: ScalingScenario) -> "WdmDelayConfig":
        return replace(self, scenario=scenario)

    def describe(self) -> str:
        return (
            f"WdmDelay[{self.scenario.name}] {self.tiles} tiles x "
            f"{self.output_lanes} lanes x {self.delay_taps} taps x "
            f"{self.wavelengths} wavelengths = {self.peak_macs_per_cycle} "
            f"MACs/cycle @ {self.clock_ghz:g} GHz; integration depth "
            f"{self.integration_depth}, GB={self.global_buffer_kib} KiB"
        )


# ---------------------------------------------------------------------------
# Architecture
# ---------------------------------------------------------------------------


def build_wdm_delay_architecture(config: WdmDelayConfig) -> Architecture:
    """The delay-buffer node list; see the module docstring for the flow."""
    nodes = (
        StorageLevel(
            name="DRAM", component="dram", domain=Domain.DE,
            dataspaces={_W, _I, _O}, capacity_bits=None,
        ),
        StorageLevel(
            name="GlobalBuffer", component="global_buffer", domain=Domain.DE,
            dataspaces={_W, _I, _O}, capacity_bits=config.global_buffer_bits,
        ),
        SpatialFanout(
            name="tiles", size=config.tiles,
            allowed_dims={Dim.N, Dim.M, Dim.P, Dim.Q},
            multicast={_W, _I},
        ),
        ConverterStage(
            name="WeightDAC", component="weight_dac",
            conversion=Conversion(Domain.DE, Domain.AE), dataspaces={_W},
        ),
        StorageLevel(
            name="RingBank", component="ring_bank", domain=Domain.AE,
            dataspaces={_W}, capacity_bits=config.bank_bits,
        ),
        ConverterStage(
            name="InputDAC", component="input_dac",
            conversion=Conversion(Domain.DE, Domain.AE), dataspaces={_I},
        ),
        ConverterStage(
            name="InputModulator", component="input_modulator",
            conversion=Conversion(Domain.AE, Domain.AO), dataspaces={_I},
        ),
        # The defining structure: a storage level in the *optical* domain.
        # One modulated stream is written once per element and read by
        # every tap below, so the input converters above amortize over the
        # whole window sweep — delay-line reuse as Timeloop semantics.
        StorageLevel(
            name="DelayLine", component="delay_line", domain=Domain.AO,
            dataspaces={_I}, capacity_bits=config.delay_buffer_bits,
            allowed_temporal_dims={Dim.N, Dim.P, Dim.Q},
        ),
        SpatialFanout(
            name="output_lanes", size=config.output_lanes,
            allowed_dims={Dim.M},
            multicast={_I},
        ),
        ConverterStage(
            name="OutputADC", component="output_adc",
            conversion=Conversion(Domain.AE, Domain.DE), dataspaces={_O},
        ),
        StorageLevel(
            name="AEIntegrator", component="ae_integrator", domain=Domain.AE,
            dataspaces={_O}, capacity_bits=float(config.bits),
            allowed_temporal_dims={Dim.C, Dim.R, Dim.S},
            max_accumulation_depth=float(config.integration_depth),
        ),
        ConverterStage(
            name="OutputPhotodiode", component="output_photodiode",
            conversion=Conversion(Domain.AO, Domain.AE), dataspaces={_O},
        ),
        SpatialFanout(
            name="delay_taps", size=config.delay_taps,
            allowed_dims={Dim.R, Dim.S},
            reduction={_O},
        ),
        SpatialFanout(
            name="wavelengths", size=config.wavelengths,
            allowed_dims={Dim.C},
            reduction={_O},
        ),
        ComputeLevel(
            name="DelayMAC", component="delay_mac", domain=Domain.AO,
            actions=(ComputeAction(component="laser", action="mac",
                                   events_per_mac=1.0),),
        ),
    )
    return Architecture(
        name=f"wdm-delay-{config.scenario.name}",
        nodes=nodes,
        clock_ghz=config.clock_ghz,
    )


def build_wdm_delay_energy_table(config: WdmDelayConfig) -> EnergyTable:
    scenario = config.scenario
    specs = [
        ComponentSpec("dram", "dram", {
            "technology": config.dram_technology,
            "width_bits": config.bits,
        }),
        ComponentSpec("global_buffer", "sram", {
            "capacity_bits": config.global_buffer_bits,
            "width_bits": config.bits,
            "banks": config.global_buffer_banks,
        }),
        ComponentSpec("weight_dac", "dac", {
            "energy_pj_at_8bit": scenario.dac_pj_at_8bit,
            "bits": config.bits,
        }),
        # The sample-and-hold ring bank: charge-domain storage per ring.
        ComponentSpec("ring_bank", "analog_integrator", {}),
        ComponentSpec("input_dac", "dac", {
            "energy_pj_at_8bit": scenario.dac_pj_at_8bit,
            "bits": config.bits,
        }),
        # Per-wavelength input ring modulator (one comb line per channel).
        ComponentSpec("input_modulator", "mrr", {
            "energy_pj": scenario.mrr_drive_pj,
        }),
        ComponentSpec("output_photodiode", "photodiode", {
            "energy_pj": scenario.photodiode_pj,
        }),
        ComponentSpec("output_adc", "adc", {
            "fom_fj_per_step": scenario.adc_fom_fj_per_step,
            "bits": config.bits,
            "sample_rate_gsps": config.clock_ghz,
        }),
        ComponentSpec("ae_integrator", "analog_integrator", {}),
        # The delay spirals: passive storage — free accesses, real area
        # (~10 um routing pitch, priced per tile like the waveguide
        # estimator) — whose cost is the loss charged to the laser below.
        ComponentSpec("delay_line", "constant", {
            "energy_pj": 0.0,
            "actions": ("read", "write", "update"),
            "area_um2": config.delay_spiral_mm * 1000.0 * 10.0,
        }),
        # Delay spirals tax the link budget on top of the scenario's
        # fixed loss — the design's defining cost.
        ComponentSpec("laser", "laser", {
            "detector_fj": scenario.detector_fj,
            "wall_plug_efficiency": scenario.laser_wall_plug_efficiency,
            "fixed_loss_db": scenario.fixed_loss_db + config.delay_loss_db,
            "broadcast_ports": config.output_lanes,
        }),
        ComponentSpec("delay_mac", "constant", {
            "energy_pj": 0.0, "actions": ("compute", "mac"),
        }),
    ]
    return build_table(specs)


#: Figure buckets matching Albireo's SYSTEM_BUCKETS for cross-system plots.
WDM_DELAY_BUCKETS = BucketScheme(
    name="wdm-delay-system",
    rules=(
        component_rule("WeightDAC", "Weight DE/AE, AE/AO"),
        component_rule("RingBank", "Weight DE/AE, AE/AO"),
        component_rule("InputDAC", "Input DE/AE, AE/AO"),
        component_rule("InputModulator", "Input DE/AE, AE/AO"),
        component_rule("DelayLine", "Input DE/AE, AE/AO"),
        component_rule("OutputADC", "Output AO/AE, AE/DE"),
        component_rule("OutputPhotodiode", "Output AO/AE, AE/DE"),
        component_rule("laser", "Other AO"),
        component_rule("AEIntegrator", "Other AO"),
        component_rule("GlobalBuffer", "On-Chip Buffer"),
        component_rule("DRAM", "DRAM"),
    ),
    default="Other AO",
    order=("Other AO", "Weight DE/AE, AE/AO", "Input DE/AE, AE/AO",
           "Output AO/AE, AE/DE", "On-Chip Buffer", "DRAM"),
)


# ---------------------------------------------------------------------------
# Constraints and the reference mapping
# ---------------------------------------------------------------------------


def wdm_delay_constraints(config: WdmDelayConfig) -> MappingConstraints:
    """Integrator depth and sample-and-hold refresh budgets."""
    return MappingConstraints(
        storages={
            "AEIntegrator": StorageConstraint(
                max_temporal_product=config.integration_depth),
            # Loops at the ring bank sweep inputs while weights stay
            # resident; the hold limit caps that sweep length.
            "RingBank": StorageConstraint(
                max_temporal_product=config.hold_cycles),
            # A delay spiral can stream at most one buffered row segment
            # per residency.
            "DelayLine": StorageConstraint(
                max_temporal_product=config.line_buffer_symbols),
        },
    )


def wdm_delay_reference_mapping(
    config: WdmDelayConfig,
    layer: ConvLayer,
    channel_mode: str = "fill",
    dram_protects: str = "auto",
) -> Mapping:
    """Deterministic weight-stationary, window-in-time reference mapping.

    Spatial: kernel window on the delay taps, input channels on
    wavelengths, output channels across lanes, leftovers of M/pixels
    across tiles.  Temporal: a row sweep *at the delay line* (window
    overlap between adjacent output columns is served by the buffered
    stream — the structure's defining reuse), the rest of the pixel/batch
    sweep at the ring bank (weights resident), buffer tiles sized to
    capacity, remainder at DRAM.  Like the crossbar, no analog
    accumulation across channel chunks — the bank cannot hold two
    chunks' weights at once, so reduction leftovers merge digitally at
    the buffer.
    """
    return _wdm_delay_assemble(
        layer, _wdm_delay_mapping_pieces(config, layer, channel_mode),
        dram_protects)


def _wdm_delay_mapping_pieces(config: WdmDelayConfig, layer: ConvLayer,
                              channel_mode: str) -> Tuple:
    """Everything about the reference mapping that does not depend on
    ``dram_protects`` — the capacity-retry factor allocation, computed
    once and shared across the DRAM-permutation variants (see
    :func:`wdm_delay_mapping_candidates`)."""
    capacity = config.global_buffer_bits * 0.95

    def build(q_cap: int, hold_budget: int):
        taker = FactorTaker(layer)

        # --- Spatial assignment, inner structures first -----------------
        r_sp = taker.take(Dim.R, config.delay_taps_per_axis)
        s_sp = taker.take(Dim.S, config.delay_taps_per_axis)
        c_sp = taker.take(Dim.C, config.wavelengths, mode=channel_mode)
        m_lane = taker.take(Dim.M, config.output_lanes)
        tile_factors = taker.take_budgeted((Dim.M, Dim.Q, Dim.P, Dim.N),
                                           config.tiles)

        # Delay line: the output-row sweep whose input halo fits the
        # buffered row segment ((q - 1) * stride + s input columns per
        # residency).
        delay_cap = max(1, min(q_cap,
                               (config.line_buffer_symbols - s_sp)
                               // layer.stride_w + 1))
        q_delay = taker.take(Dim.Q, delay_cap)
        delay_factors = {Dim.Q: q_delay} if q_delay > 1 else {}

        # Ring bank: weights stay put across the rest of the pixel
        # sweep.  The hold budget is consumed jointly by the delay-line
        # row sweep inside the residency and the bank's own loops.
        bank_factors = taker.take_budgeted(
            (Dim.Q, Dim.P, Dim.N), max(1, hold_budget // q_delay))

        spatial_cum = {Dim.R: r_sp, Dim.S: s_sp, Dim.C: c_sp,
                       Dim.M: m_lane}
        for dim, factor in tile_factors.items():
            spatial_cum[dim] = spatial_cum.get(dim, 1) * factor

        # --- Global-buffer tile: shrink until it fits -------------------
        gb_factors = shrink_to_fit(
            layer, taker.dims, dict(taker.remaining), capacity,
            spatial_cum, bank_factors, delay_factors,
        )
        return (taker, r_sp, s_sp, c_sp, m_lane, tile_factors,
                delay_factors, bank_factors, spatial_cum, gb_factors)

    # The buffer tile floor includes the whole resident pixel sweep
    # (delay x bank); when even fully shrunk GB loops cannot fit it,
    # retry with a smaller sweep — fewer resident rows, more weight
    # refetch — until the tile fits (q_cap = hold = 1 always does:
    # the floor is then the spatial tile, which any buffer sized for
    # the array holds).
    q_cap, hold_budget = layer.q, config.hold_cycles
    for _ in range(64):
        (taker, r_sp, s_sp, c_sp, m_lane, tile_factors, delay_factors,
         bank_factors, spatial_cum, gb_factors) = build(q_cap, hold_budget)
        bounds = combined_bounds(taker.dims, gb_factors, spatial_cum,
                                 bank_factors, delay_factors)
        if tile_occupancy_bits(layer, bounds) <= capacity:
            break
        if hold_budget > 1:
            hold_budget = max(1, hold_budget // 4)
        elif q_cap > 1:
            q_cap = max(1, q_cap // 4)
        else:
            break
    dram_factors = taker.residual_after(gb_factors)

    inner_levels = (
        LevelMapping("GlobalBuffer", temporal_loops(gb_factors, GB_ORDER)),
        LevelMapping("RingBank",
                     temporal_loops(bank_factors, (Dim.N, Dim.P, Dim.Q))),
        LevelMapping("DelayLine", temporal_loops(delay_factors, (Dim.Q,))),
        LevelMapping("AEIntegrator", ()),
    )
    spatials = (
        FanoutMapping("tiles", tile_factors),
        FanoutMapping("output_lanes", {Dim.M: m_lane} if m_lane > 1 else {}),
        FanoutMapping("delay_taps",
                      {d: f for d, f in ((Dim.R, r_sp), (Dim.S, s_sp))
                       if f > 1}),
        FanoutMapping("wavelengths", {Dim.C: c_sp} if c_sp > 1 else {}),
    )
    return spatials, dram_factors, inner_levels


def _wdm_delay_assemble(layer: ConvLayer, pieces: Tuple,
                        dram_protects: str) -> Mapping:
    """Attach the DRAM permutation to the shared mapping pieces."""
    spatials, dram_factors, inner_levels = pieces
    dram_level = LevelMapping(
        "DRAM",
        temporal_loops(dram_factors,
                       dram_order_protecting(layer, dram_protects)))
    return Mapping(levels=(dram_level,) + inner_levels, spatials=spatials)


def wdm_delay_mapping_candidates(config: WdmDelayConfig,
                                 layer: ConvLayer) -> List[Mapping]:
    """The reference-mapping variants worth pricing for one layer:
    padded-vs-exact wavelength splits crossed with the DRAM protection
    choice.  Deduplicated; typically 2-6 distinct mappings."""
    candidates: List[Mapping] = []
    seen = set()
    for channel_mode in ("fill", "divisor"):
        pieces = _wdm_delay_mapping_pieces(config, layer, channel_mode)
        for dram_protects in ("weights", "inputs", "outputs"):
            mapping = _wdm_delay_assemble(layer, pieces, dram_protects)
            key = mapping.structure_key()
            if key not in seen:
                seen.add(key)
                candidates.append(mapping)
    return candidates


# ---------------------------------------------------------------------------
# The bundled system
# ---------------------------------------------------------------------------


class WdmDelaySystem(PhotonicSystem):
    """The WDM delay-buffer accelerator ready to evaluate.

    Entirely inherited machinery (see
    :class:`~repro.systems.base.PhotonicSystem`): this class is nothing
    but the structural hooks — the proof that onboarding a new photonic
    accelerator is a config + architecture + reference mapping, not a
    re-implementation of the pipeline.
    """

    name = "wdm_delay"
    config_type = WdmDelayConfig
    build_architecture = staticmethod(build_wdm_delay_architecture)
    build_energy_table = staticmethod(build_wdm_delay_energy_table)

    def constraints(self, layer: ConvLayer) -> MappingConstraints:
        return wdm_delay_constraints(self.config)

    def mapping_candidates(self, layer: ConvLayer) -> List[Mapping]:
        return wdm_delay_mapping_candidates(self.config, layer)


# ---------------------------------------------------------------------------
# Registry entry
# ---------------------------------------------------------------------------


def wdm_delay_default_sweep() -> List[WdmDelayConfig]:
    """The ``repro sweep --system wdm_delay`` grid: 2 scenarios x 3 tile
    counts x 2 lane counts x 2 wavelength counts = 24 configurations."""
    configs = []
    for scenario in (CONSERVATIVE, AGGRESSIVE):
        for tiles in (4, 8, 16):
            for output_lanes in (8, 16):
                for wavelengths in (4, 8):
                    configs.append(WdmDelayConfig(
                        scenario=scenario,
                        tiles=tiles,
                        output_lanes=output_lanes,
                        wavelengths=wavelengths,
                    ))
    return configs


register_system(SystemEntry(
    name="wdm_delay",
    config_type=WdmDelayConfig,
    system_type=WdmDelaySystem,
    build_architecture=build_wdm_delay_architecture,
    build_energy_table=build_wdm_delay_energy_table,
    buckets=WDM_DELAY_BUCKETS,
    supports_store=True,
    description=("WDM delay-buffer photonic CNN accelerator "
                 "(Xu et al., 2019 class): weight-stationary ring banks, "
                 "per-wavelength input channels, kernel window built in "
                 "time by spiral delay lines"),
    default_sweep=wdm_delay_default_sweep,
    sweep_columns=(
        ("scaling", lambda config: config.scenario.name),
        ("tiles", lambda config: config.tiles),
        ("lanes", lambda config: config.output_lanes),
        ("WDM", lambda config: config.wavelengths),
    ),
))
