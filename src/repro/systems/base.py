"""The pluggable system framework: one base class, many accelerators.

The paper's core claim is that a single architecture-level methodology —
Timeloop-style loop nests priced by a photonic component library — models
*many* photonic DNN accelerators.  :class:`PhotonicSystem` is that claim
as code: it owns the entire config → architecture → energy table →
reference mapping → evaluation pipeline once, and a concrete system
(Albireo, the WDM crossbar, the WDM delay-buffer accelerator, or a user's
own design) supplies only the parts that make it *that* system:

* ``config_type`` — a frozen dataclass of its parameters;
* :meth:`build_architecture` / :meth:`build_energy_table` — the node list
  and component pricing (pure functions of the config);
* :meth:`mapping_candidates` — the reference-mapping variants worth
  pricing for a layer;
* optionally :meth:`constraints` (mapper search limits) and
  :meth:`analysis_layer` (the workload the hardware physically executes,
  e.g. Albireo's strided-convolution window expansion).

Everything else — per-shape reference-mapping caches, the mapper-search
and layer-evaluation ``store`` seam the sweep engine memoizes through,
shared-:class:`~repro.mapping.analysis.SearchContext` candidate pricing,
fusion-aware network evaluation — is inherited, so every registered
system gets warmed-cache parallel sweeps for free.

Architecture and energy-table builds are memoized per (builder, config)
in :func:`build_cached`: configs are frozen dataclasses, so equal configs
(across system instances, sweep jobs, and the engine's job-identity
hashing) share one immutable build instead of re-deriving it.
"""

from __future__ import annotations

import abc
import dataclasses
import functools
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import obs
from repro.arch.hierarchy import Architecture
from repro.energy.table import EnergyTable
from repro.exceptions import SpecError
from repro.mapping.analysis import HAVE_NUMPY, SearchContext
from repro.mapping.constraints import MappingConstraints
from repro.mapping.mapper import Mapper, MapperResult
from repro.mapping.mapping import Mapping
from repro.model.accelerator import (
    AcceleratorModel,
    NetworkOptions,
    fusion_blocks,
)
from repro.model.results import LayerEvaluation, NetworkEvaluation
from repro.workloads.layer import ConvLayer
from repro.workloads.network import Network

# ---------------------------------------------------------------------------
# Build caching
# ---------------------------------------------------------------------------

#: Memoized (builder, config) -> architecture / energy table.  Bounded
#: FIFO: sweeps revisit their configuration set repeatedly, and every
#: cached value is immutable, so sharing across systems/jobs is safe.
#: Sized above the largest plausible single-sweep config grid — an
#: undersized cache thrashes here *and* breaks the identity-keyed
#: architecture-JSON memo in :mod:`repro.engine.jobs` (each rebuild is
#: a fresh object).
_BUILD_CACHE: Dict[Tuple[Any, ...], Any] = {}
_BUILD_CACHE_LIMIT = 4096


def build_cached(builder: Callable[[Any], Any], config: Any) -> Any:
    """``builder(config)``, memoized when the pair is hashable.

    Used by :class:`PhotonicSystem` construction *and* the sweep engine's
    job-identity hashing (:meth:`repro.engine.jobs.EvaluationJob.to_dict`
    re-derives the architecture), so a cached sweep builds each distinct
    architecture once per process instead of once per lookup.
    """
    try:
        key = (builder, config)
        hash(key)
    except TypeError:  # unhashable custom config: build uncached
        return builder(config)
    value = _BUILD_CACHE.get(key)
    if value is None:
        value = builder(config)
        if len(_BUILD_CACHE) >= _BUILD_CACHE_LIMIT:
            _BUILD_CACHE.pop(next(iter(_BUILD_CACHE)))
        _BUILD_CACHE[key] = value
    return value


def layer_shape_key(layer: ConvLayer) -> Tuple:
    """Cache key: everything that affects mapping choice except the name."""
    return (layer.n, layer.m, layer.c, layer.p, layer.q, layer.r, layer.s,
            layer.stride_h, layer.stride_w, layer.groups,
            layer.bits_per_weight, layer.bits_per_activation)


@functools.lru_cache(maxsize=None)
def _dedup_field_names(layer_cls: type) -> Tuple[str, ...]:
    """Every dataclass field of ``layer_cls`` except ``name`` — the slice
    of the layer :meth:`PhotonicSystem.sub_task_dedup_key` shares numbers
    under.  Per-class, so calling it per task costs one dict probe."""
    return tuple(field.name for field in dataclasses.fields(layer_cls)
                 if field.name != "name")


# ---------------------------------------------------------------------------
# Sub-tasks: the planner's unit of work
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SubTask:
    """One cacheable unit of a network evaluation.

    The sweep engine's planner (:mod:`repro.engine.planner`) expands each
    whole-network job into these, deduplicates them across a batch, and
    executes the unique remainder at task granularity.  A ``"mapper"``
    task runs one mapper search; a ``"layer"`` task evaluates one layer
    under one pair of DRAM-traffic flags.  Both are keyed and persisted
    through the system's ``store`` seam, so computing a sub-task warms
    exactly the entries the normal evaluation path would look up.
    """

    kind: str  # "mapper" | "layer"
    layer: ConvLayer
    use_mapper: bool = False
    input_from_dram: bool = True
    output_to_dram: bool = True


# ---------------------------------------------------------------------------
# The base system
# ---------------------------------------------------------------------------


class PhotonicSystem(abc.ABC):
    """A photonic accelerator ready to evaluate: architecture + energy
    table + model, behind the uniform interface every front-end (CLI,
    sweep engine, experiments, DSE) programs against::

        system = SomeSystem(SomeConfig(scenario=AGGRESSIVE))
        result = system.evaluate_layer(layer)
        print(result.energy.describe(buckets))

    ``store`` is an optional persistence seam used by the sweep engine
    (duck-typed; see :class:`repro.engine.cache.SystemStore`): when given,
    mapper searches and default-mapping layer evaluations are looked up
    from / saved to it, so repeat evaluations of the same (config, layer)
    pair — across jobs, processes, or sessions — skip the expensive work.
    Every subclass inherits the seam; registering a system (see
    :mod:`repro.systems.registry`) is all it takes to join warmed-cache
    parallel sweeps.
    """

    #: Registry tag; set by subclasses (matches the registry entry name).
    name: ClassVar[str] = ""
    #: The system's configuration dataclass; ``SystemType()`` constructs
    #: the default instance.
    config_type: ClassVar[type]
    #: Whether :meth:`enumerate_sub_tasks` and the sub-task key methods
    #: are pure functions of (network, fused, use_mapper) — independent
    #: of the instance's configuration.  True for the base implementation
    #: (and every built-in system: :meth:`analysis_layer` overrides are
    #: shape-only transforms).  The sweep planner shares one expansion
    #: across all configurations of a batch when this holds; a subclass
    #: whose task keys read ``self.config`` or ``self.architecture`` must
    #: set this to False.
    subtask_keys_config_free: ClassVar[bool] = True

    def __init__(self, config: Optional[Any] = None,
                 store: Optional[object] = None) -> None:
        self.config = self.config_type() if config is None else config
        self.store = store
        self.architecture: Architecture = build_cached(
            type(self).build_architecture, self.config)
        self.energy_table: EnergyTable = build_cached(
            type(self).build_energy_table, self.config)
        self.model = AcceleratorModel(self.architecture, self.energy_table)
        self._mapping_cache: Dict[Tuple, Mapping] = {}

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @staticmethod
    @abc.abstractmethod
    def build_architecture(config: Any) -> Architecture:
        """The system's node list for one configuration (pure function)."""

    @staticmethod
    @abc.abstractmethod
    def build_energy_table(config: Any) -> EnergyTable:
        """Component pricing for one configuration (pure function)."""

    @abc.abstractmethod
    def mapping_candidates(self, layer: ConvLayer) -> Sequence[Mapping]:
        """Reference-mapping variants worth pricing for ``layer``.

        Called with the *analysis* layer (post :meth:`analysis_layer`).
        A single-element sequence short-circuits pricing; several elements
        are priced with the full model and the cheapest wins.
        """

    def constraints(self, layer: ConvLayer) -> MappingConstraints:
        """Mapping constraints for mapper searches (default: none)."""
        return MappingConstraints()

    def analysis_layer(self, layer: ConvLayer) -> ConvLayer:
        """The workload the hardware physically executes for ``layer``
        (default: the layer itself)."""
        return layer

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def reference_mapping(self, layer: ConvLayer) -> Mapping:
        """The cheapest of the reference-mapping candidates for this layer.

        Candidates (a handful of tiling/permutation variants) are priced
        with the full model and the result is cached per layer shape.
        """
        target = self.analysis_layer(layer)
        key = layer_shape_key(target)
        cached = self._mapping_cache.get(key)
        if cached is not None:
            return cached
        candidates = list(self.mapping_candidates(target))
        if len(candidates) == 1:
            # Deterministic single-variant systems skip pricing entirely.
            best_mapping: Optional[Mapping] = candidates[0]
        else:
            with obs.span("refmap.select", layer=target.name,
                          candidates=len(candidates)):
                best_mapping = None
                best_cost = float("inf")
                # One shared search context across the candidate pricing
                # loop: the candidates differ only in
                # tilings/permutations, so the memoized nest geometry
                # (tile sizes, fill events) hits across them.
                context = SearchContext.for_layer(self.architecture, target)
                if HAVE_NUMPY:
                    # Batched pricing over the candidate axis; invalid
                    # candidates come back as None.  Bit-identical to the
                    # scalar loop below (same first-minimal scan).
                    survivors = []
                    for mapping in candidates:
                        try:
                            mapping.validate(self.architecture, target)
                        except Exception:  # invalid candidate
                            continue
                        survivors.append(mapping)
                    costs = self.model.batch_energy_pj(target, survivors,
                                                       context)
                    candidates = []
                    for mapping, cost in zip(survivors, costs):
                        if cost is None:
                            continue
                        if cost < best_cost:
                            best_cost = cost
                            best_mapping = mapping
                for mapping in candidates:
                    try:
                        cost = self.model.evaluate_layer(
                            target, mapping, context=context).energy_pj
                    except Exception:  # invalid candidate (capacity, ...)
                        continue
                    if cost < best_cost:
                        best_cost = cost
                        best_mapping = mapping
        if best_mapping is None:
            raise SpecError(
                f"no valid reference mapping for layer {layer.name!r} on "
                f"{self.config.describe()}"
            )
        self._mapping_cache[key] = best_mapping
        return best_mapping

    def _mapper_store_key(self, layer: ConvLayer,
                          max_evaluations: int = 1000,
                          seed: int = 0) -> Tuple:
        """Structural ``store`` key of one mapper search (name-free: keyed
        by the executed workload's shape, so same-geometry layers share)."""
        return ("mapper", layer_shape_key(self.analysis_layer(layer)),
                max_evaluations, seed)

    def _layer_store_key(self, layer: ConvLayer, use_mapper: bool,
                         input_from_dram: bool,
                         output_to_dram: bool) -> Tuple:
        """Structural ``store`` key of one default-mapping layer
        evaluation: the layer (shape and name, so cached results
        reconstruct exactly) plus every flag that changes the result."""
        return ("layer", layer.name, layer_shape_key(layer),
                bool(use_mapper), bool(input_from_dram),
                bool(output_to_dram))

    def search_mapping(self, layer: ConvLayer,
                       max_evaluations: int = 1000,
                       seed: int = 0) -> MapperResult:
        """Mapper search (on the executed workload), seeded with the
        reference mapping.  Memoized through the ``store`` seam."""
        target = self.analysis_layer(layer)
        store_key = self._mapper_store_key(layer, max_evaluations, seed)
        if self.store is not None:
            cached = self.store.load_mapper_result(store_key)
            if cached is not None:
                return cached
        mapper = Mapper(
            self.architecture,
            cost_fn=self.model.energy_cost_fn(target),
            constraints=self.constraints(target),
        )
        result = mapper.search(
            target, max_evaluations=max_evaluations, seed=seed,
            extra_candidates=(self.reference_mapping(layer),),
        )
        if self.store is not None:
            self.store.save_mapper_result(store_key, result)
        return result

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_layer(
        self,
        layer: ConvLayer,
        mapping: Optional[Mapping] = None,
        use_mapper: bool = False,
        input_from_dram: bool = True,
        output_to_dram: bool = True,
    ) -> LayerEvaluation:
        target = self.analysis_layer(layer)
        store_key = None
        if self.store is not None and mapping is None:
            # Only the default-mapping path is cacheable.
            store_key = self._layer_store_key(
                layer, use_mapper, input_from_dram, output_to_dram)
            cached = self.store.load_layer(store_key)
            if cached is not None:
                return cached
        with obs.span("layer.evaluate", layer=layer.name,
                      use_mapper=use_mapper):
            if mapping is None:
                if use_mapper:
                    mapping = self.search_mapping(layer).mapping
                else:
                    mapping = self.reference_mapping(layer)
            evaluation = self.model.evaluate_layer(
                layer, mapping,
                input_from_dram=input_from_dram,
                output_to_dram=output_to_dram,
                analysis_layer=(target if target is not layer else None),
            )
        if store_key is not None:
            self.store.save_layer(store_key, evaluation)
        return evaluation

    def evaluate_network(
        self,
        network: Network,
        fused: bool = False,
        use_mapper: bool = False,
    ) -> NetworkEvaluation:
        """Whole-network evaluation with the system's workload handling.

        Mirrors :meth:`AcceleratorModel.evaluate_network`'s fusion policy
        while routing each layer through :meth:`evaluate_layer` so
        executed-workload expansion (:meth:`analysis_layer`) and the store
        seam apply per layer.
        """
        if fused:
            self.model._check_fusion_capacity(network,
                                              NetworkOptions(fused=True))
        evaluations = []
        entries = network.entries
        for index, entry in enumerate(entries):
            is_last = index == len(entries) - 1
            for input_dram, output_dram, count in fusion_blocks(
                    entry, is_last, fused):
                evaluation = self.evaluate_layer(
                    entry.layer,
                    use_mapper=use_mapper,
                    input_from_dram=input_dram,
                    output_to_dram=output_dram,
                )
                evaluations.append((evaluation, count))
        return NetworkEvaluation(
            name=network.name,
            layers=tuple(evaluations),
            clock_ghz=self.architecture.clock_ghz,
            peak_parallelism=self.architecture.peak_parallelism,
        )

    # ------------------------------------------------------------------
    # Sub-task seams (used by the sweep engine's planner)
    # ------------------------------------------------------------------
    def enumerate_sub_tasks(self, network: Network, fused: bool = False,
                            use_mapper: bool = False) -> List[SubTask]:
        """The unique sub-tasks :meth:`evaluate_network` would compute.

        Mirrors the evaluation loop (same :func:`fusion_blocks` policy)
        without evaluating anything: one ``"layer"`` task per distinct
        (layer, DRAM flags) store key, preceded — when the mapper is on —
        by one ``"mapper"`` task per distinct search key, so executing
        the tasks in order warms every entry the evaluation will look up.
        """
        mapper_tasks: List[SubTask] = []
        layer_tasks: List[SubTask] = []
        seen = set()
        entries = network.entries
        for index, entry in enumerate(entries):
            is_last = index == len(entries) - 1
            if use_mapper:
                task = SubTask(kind="mapper", layer=entry.layer,
                               use_mapper=True)
                key = self.sub_task_store_key(task)
                if key not in seen:
                    seen.add(key)
                    mapper_tasks.append(task)
            for input_dram, output_dram, _count in fusion_blocks(
                    entry, is_last, fused):
                task = SubTask(kind="layer", layer=entry.layer,
                               use_mapper=use_mapper,
                               input_from_dram=input_dram,
                               output_to_dram=output_dram)
                key = self.sub_task_store_key(task)
                if key not in seen:
                    seen.add(key)
                    layer_tasks.append(task)
        return mapper_tasks + layer_tasks

    def sub_task_store_key(self, task: SubTask) -> Tuple:
        """The ``store`` key :meth:`compute_sub_task` reads and writes —
        exactly the key the normal evaluation path uses, so planner-warmed
        entries are pure hits afterwards."""
        if task.kind == "mapper":
            return self._mapper_store_key(task.layer)
        return self._layer_store_key(task.layer, task.use_mapper,
                                     task.input_from_dram,
                                     task.output_to_dram)

    def sub_task_dedup_key(self, task: SubTask) -> Tuple:
        """Identity under which a sub-task's *numbers* are shared.

        Layer names are presentation: the whole evaluation pipeline is a
        function of the layer's shape fields (reference mappings and
        mapper searches are already keyed shape-only), so two layer tasks
        differing only in ``layer.name`` produce evaluations identical in
        everything but that name.  The planner computes one representative
        per dedup key and derives the siblings by renaming — a system
        whose evaluation *does* depend on the name must override this to
        include it.
        """
        layer = task.layer
        shape = tuple(getattr(layer, name)
                      for name in _dedup_field_names(type(layer)))
        if task.kind == "mapper":
            return ("mapper", shape)
        return ("layer", shape, bool(task.use_mapper),
                bool(task.input_from_dram), bool(task.output_to_dram))

    def compute_sub_task(self, task: SubTask) -> None:
        """Execute one sub-task; its result lands in the ``store`` seam."""
        if task.kind == "mapper":
            self.search_mapping(task.layer)
        elif task.kind == "layer":
            self.evaluate_layer(task.layer, use_mapper=task.use_mapper,
                                input_from_dram=task.input_from_dram,
                                output_to_dram=task.output_to_dram)
        else:
            raise SpecError(f"unknown sub-task kind {task.kind!r}")

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def area_summary_um2(self) -> Dict[str, float]:
        return self.model.area_um2()

    def describe(self) -> str:
        return self.config.describe() + "\n" + self.architecture.describe()
