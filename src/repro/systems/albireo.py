"""The Albireo photonic CNN accelerator model.

Albireo (Shiflett et al., ISCA 2021) is the system the ISPASS'24 paper
models.  Following the paper's Fig. 1, data moves:

* **Weights**: DRAM -> global buffer (DE) -> DAC (DE/AE) -> microring
  drive (AE/AO); one drive line can bias ``weight_lanes`` rings in parallel
  pixel lanes (the paper's "More Weight Reuse" variant raises this).
* **Inputs**: DRAM -> global buffer -> DAC -> Mach-Zehnder modulator
  (AE/AO) -> star coupler broadcasting to ``star_ports`` lanes (the IR
  input-reuse factor).
* **Outputs**: optical products sum over ``wavelengths`` at each photodiode
  (AO/AE); an AE summation/integration stage merges ``output_reuse`` (OR)
  partials per ADC conversion (AE/DE); results return to the global buffer
  and DRAM.

The spatial organization is ``clusters x weight_lanes x star_ports x
(window sites) x wavelengths`` MACs per cycle; the default configuration
(16 x 1 x 9 x 9 x 5 = 6480 at 5 GHz) matches the ideal-throughput bar of
the paper's Fig. 3.  A 3x3 locally-connected window-site array handles
unstrided convolutions natively; strided layers can only use one site per
strided axis and fully-connected layers use a single site — the two
under-utilization mechanisms the paper demonstrates on AlexNet.

Every number that parameterizes devices lives in
:class:`~repro.energy.scaling.ScalingScenario`; this module contributes the
*structure* (where converters sit relative to reuse fanouts), which is what
determines how many conversions a mapping implies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.arch.domains import Conversion, Domain
from repro.arch.hierarchy import (
    Architecture,
    ComputeAction,
    ComputeLevel,
    ConverterStage,
    SpatialFanout,
    StorageLevel,
)
from repro.energy.estimator import ComponentSpec, build_table
from repro.energy.scaling import (
    AGGRESSIVE,
    CONSERVATIVE,
    ScalingScenario,
)
from repro.energy.table import EnergyTable
from repro.exceptions import SpecError
from repro.mapping.constraints import MappingConstraints, StorageConstraint
from repro.mapping.factorization import largest_divisor_at_most
from repro.mapping.mapping import FanoutMapping, LevelMapping, Mapping
from repro.model.buckets import BucketScheme, component_rule
from repro.systems.base import PhotonicSystem
from repro.systems.refmap import (
    GB_ORDER,
    FactorTaker,
    dram_order_protecting,
    shrink_to_fit,
    temporal_loops,
)
from repro.systems.registry import SystemEntry, register_system
from repro.units import KIBIBYTE
from repro.workloads.dataspace import DataSpace
from repro.workloads.dims import Dim
from repro.workloads.layer import ConvLayer


@dataclass(frozen=True)
class AlbireoConfig:
    """Parameters of one Albireo instance.

    Defaults model the baseline ("Original") configuration; the paper's
    exploration axes are ``scenario`` (Fig. 2/4), ``star_ports`` (IR),
    ``output_reuse`` (OR), ``weight_lanes`` (WR, the "More Weight Reuse"
    variant) for Fig. 5, and ``global_buffer_kib`` for fusion (Fig. 4).
    """

    scenario: ScalingScenario = CONSERVATIVE
    clusters: int = 16
    star_ports: int = 9
    window_sites_per_axis: int = 3
    wavelengths: int = 5
    weight_lanes: int = 1
    output_reuse: int = 3
    clock_ghz: float = 5.0
    global_buffer_kib: int = 1024
    global_buffer_banks: int = 16
    dram_technology: str = "ddr4"
    #: Off-chip memory bandwidth in gigabytes per second; None models the
    #: paper's Fig. 3 convention (compute-limited throughput only).
    dram_bandwidth_gbps: Optional[float] = None
    #: Attach DRAM over digital-optical (DO) links instead of an electrical
    #: DDR interface — the TPU-v4-style option the paper mentions.  The
    #: DRAM core then costs ``OPTICAL_IO_DRAM_CORE_PJ_PER_BIT`` and each
    #: crossing pays transmitter + receiver link energy.
    optical_dram_io: bool = False
    bits: int = 8

    def __post_init__(self) -> None:
        for name in ("clusters", "star_ports", "window_sites_per_axis",
                     "wavelengths", "weight_lanes", "output_reuse",
                     "global_buffer_kib", "global_buffer_banks", "bits"):
            if getattr(self, name) < 1:
                raise SpecError(f"AlbireoConfig.{name} must be >= 1")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def window_sites(self) -> int:
        return self.window_sites_per_axis ** 2

    @property
    def peak_macs_per_cycle(self) -> int:
        return (self.clusters * self.weight_lanes * self.star_ports
                * self.window_sites * self.wavelengths)

    @property
    def or_spatial(self) -> int:
        """Spatial share of OR: AE summation fan-in after the photodiodes.

        The largest divisor of ``output_reuse`` that the window-site array
        can supply; the remainder is temporal integration depth.
        """
        return largest_divisor_at_most(self.output_reuse, self.window_sites)

    @property
    def or_temporal(self) -> int:
        """Temporal share of OR: analog integration depth before the ADC."""
        return self.output_reuse // self.or_spatial

    @property
    def global_buffer_bits(self) -> float:
        return float(self.global_buffer_kib * KIBIBYTE)

    @property
    def dram_bandwidth_bits_per_cycle(self) -> Optional[float]:
        """DRAM bandwidth in bits per accelerator cycle (None = unbounded)."""
        if self.dram_bandwidth_gbps is None:
            return None
        bits_per_ns = self.dram_bandwidth_gbps * 8.0  # GB/s == bits/ns * 8
        return bits_per_ns / self.clock_ghz

    def with_scenario(self, scenario: ScalingScenario) -> "AlbireoConfig":
        return replace(self, scenario=scenario)

    def describe(self) -> str:
        return (
            f"Albireo[{self.scenario.name}] {self.clusters} clusters x "
            f"{self.weight_lanes} lanes x IR={self.star_ports} x "
            f"{self.window_sites} sites x {self.wavelengths} wavelengths "
            f"= {self.peak_macs_per_cycle} MACs/cycle @ {self.clock_ghz:g} "
            f"GHz; OR={self.output_reuse}, GB={self.global_buffer_kib} KiB"
        )


# ---------------------------------------------------------------------------
# Architecture
# ---------------------------------------------------------------------------

_W = DataSpace.WEIGHTS
_I = DataSpace.INPUTS
_O = DataSpace.OUTPUTS

#: DRAM core energy (pJ/bit) when the DDR electrical interface is replaced
#: by optical I/O — roughly the array + minimal-interface share of a DDR4
#: access.
OPTICAL_IO_DRAM_CORE_PJ_PER_BIT = 6.0
#: Per-bit energy of each optical link endpoint (co-packaged optics).
OPTICAL_LINK_TX_PJ_PER_BIT = 1.2
OPTICAL_LINK_RX_PJ_PER_BIT = 0.8


def _optical_io_stages() -> Tuple[ConverterStage, ...]:
    """DO-link converter stages between DRAM and the global buffer."""
    return (
        ConverterStage(
            name="DramLinkTx", component="dram_link_tx",
            conversion=Conversion(Domain.DE, Domain.DO),
            dataspaces={_W, _I},
        ),
        ConverterStage(
            name="DramLinkRx", component="dram_link_rx",
            conversion=Conversion(Domain.DO, Domain.DE),
            dataspaces={_W, _I},
        ),
        ConverterStage(
            name="OutputLinkTx", component="dram_link_tx_out",
            conversion=Conversion(Domain.DE, Domain.DO),
            dataspaces={_O},
        ),
        ConverterStage(
            name="OutputLinkRx", component="dram_link_rx_out",
            conversion=Conversion(Domain.DO, Domain.DE),
            dataspaces={_O},
        ),
    )


def build_albireo_architecture(config: AlbireoConfig) -> Architecture:
    """The Albireo node list; see the module docstring for the rationale."""
    nodes = (
        StorageLevel(
            name="DRAM", component="dram", domain=Domain.DE,
            dataspaces={_W, _I, _O}, capacity_bits=None,
            bandwidth_bits_per_cycle=config.dram_bandwidth_bits_per_cycle,
        ),
    )
    if config.optical_dram_io:
        nodes = nodes + _optical_io_stages()
    nodes = nodes + (
        StorageLevel(
            name="GlobalBuffer", component="global_buffer", domain=Domain.DE,
            dataspaces={_W, _I, _O}, capacity_bits=config.global_buffer_bits,
        ),
        SpatialFanout(
            name="clusters", size=config.clusters,
            allowed_dims={Dim.N, Dim.M, Dim.P, Dim.Q},
            multicast={_W, _I},
        ),
        ConverterStage(
            name="WeightDAC", component="weight_dac",
            conversion=Conversion(Domain.DE, Domain.AE), dataspaces={_W},
        ),
        ConverterStage(
            name="InputDAC", component="input_dac",
            conversion=Conversion(Domain.DE, Domain.AE), dataspaces={_I},
        ),
        ConverterStage(
            name="WeightModulator", component="weight_modulator",
            conversion=Conversion(Domain.AE, Domain.AO), dataspaces={_W},
        ),
        SpatialFanout(
            name="weight_lanes", size=config.weight_lanes,
            allowed_dims={Dim.N, Dim.P, Dim.Q},
            multicast={_W},
        ),
        ConverterStage(
            name="InputMZM", component="input_mzm",
            conversion=Conversion(Domain.AE, Domain.AO), dataspaces={_I},
        ),
        SpatialFanout(
            name="star_coupler", size=config.star_ports,
            allowed_dims={Dim.M},
            multicast={_I},
        ),
        ConverterStage(
            name="OutputADC", component="output_adc",
            conversion=Conversion(Domain.AE, Domain.DE), dataspaces={_O},
        ),
        StorageLevel(
            name="AEIntegrator", component="ae_integrator", domain=Domain.AE,
            dataspaces={_O},
            capacity_bits=float(config.bits),
            allowed_temporal_dims={Dim.C, Dim.R, Dim.S},
            max_accumulation_depth=float(config.or_temporal),
        ),
        SpatialFanout(
            name="window_sites", size=config.window_sites,
            allowed_dims={Dim.R, Dim.S},
            reduction={_O}, reduction_limit=config.or_spatial,
        ),
        ConverterStage(
            name="OutputPhotodiode", component="output_photodiode",
            conversion=Conversion(Domain.AO, Domain.AE), dataspaces={_O},
        ),
        SpatialFanout(
            name="wavelengths", size=config.wavelengths,
            allowed_dims={Dim.C},
            reduction={_O},
        ),
        ComputeLevel(
            name="PhotonicMAC", component="photonic_mac", domain=Domain.AO,
            actions=(ComputeAction(component="laser", action="mac",
                                   events_per_mac=1.0),),
        ),
    )
    return Architecture(
        name=f"albireo-{config.scenario.name}",
        nodes=nodes,
        clock_ghz=config.clock_ghz,
    )


def build_albireo_energy_table(config: AlbireoConfig) -> EnergyTable:
    """Price Albireo's components under the config's scaling scenario."""
    scenario = config.scenario
    if config.optical_dram_io:
        dram_spec = ComponentSpec("dram", "dram", {
            "pj_per_bit": OPTICAL_IO_DRAM_CORE_PJ_PER_BIT,
            "width_bits": config.bits,
        })
    else:
        dram_spec = ComponentSpec("dram", "dram", {
            "technology": config.dram_technology,
            "width_bits": config.bits,
        })
    specs = [
        dram_spec,
        ComponentSpec("global_buffer", "sram", {
            "capacity_bits": config.global_buffer_bits,
            "width_bits": config.bits,
            "banks": config.global_buffer_banks,
        }),
        ComponentSpec("weight_dac", "dac", {
            "energy_pj_at_8bit": scenario.dac_pj_at_8bit,
            "bits": config.bits,
        }),
        ComponentSpec("input_dac", "dac", {
            "energy_pj_at_8bit": scenario.dac_pj_at_8bit,
            "bits": config.bits,
        }),
        ComponentSpec("weight_modulator", "mrr", {
            "energy_pj": scenario.mrr_drive_pj,
            "shared_lanes": config.weight_lanes,
        }),
        ComponentSpec("input_mzm", "mzm", {
            "energy_pj": scenario.mzm_pj,
        }),
        ComponentSpec("output_photodiode", "photodiode", {
            "energy_pj": scenario.photodiode_pj,
        }),
        ComponentSpec("output_adc", "adc", {
            "fom_fj_per_step": scenario.adc_fom_fj_per_step,
            "bits": config.bits,
            "sample_rate_gsps": config.clock_ghz,
        }),
        ComponentSpec("ae_integrator", "analog_integrator", {}),
        ComponentSpec("laser", "laser", {
            "detector_fj": scenario.detector_fj,
            "wall_plug_efficiency": scenario.laser_wall_plug_efficiency,
            "fixed_loss_db": scenario.fixed_loss_db,
            "broadcast_ports": config.star_ports,
        }),
        ComponentSpec("photonic_mac", "constant", {
            "energy_pj": 0.0,
            "actions": ("compute", "mac"),
        }),
        # Passive optics, priced for area accounting only.
        ComponentSpec("star_coupler", "star_coupler", {
            "ports": config.star_ports,
        }),
    ]
    if config.optical_dram_io:
        for name, per_bit in (
                ("dram_link_tx", OPTICAL_LINK_TX_PJ_PER_BIT),
                ("dram_link_rx", OPTICAL_LINK_RX_PJ_PER_BIT),
                ("dram_link_tx_out", OPTICAL_LINK_TX_PJ_PER_BIT),
                ("dram_link_rx_out", OPTICAL_LINK_RX_PJ_PER_BIT)):
            specs.append(ComponentSpec(name, "optical_link", {
                "energy_pj_per_bit": per_bit,
                "width_bits": config.bits,
            }))
    return build_table(specs)


# ---------------------------------------------------------------------------
# Figure bucket schemes
# ---------------------------------------------------------------------------

#: Fig. 2 component view: MRR, MZM, Laser, AO/AE, DE/AE, AE/DE, Cache.
FIG2_BUCKETS = BucketScheme(
    name="fig2",
    rules=(
        component_rule("WeightModulator", "MRR"),
        component_rule("InputMZM", "MZM"),
        component_rule("laser", "Laser"),
        component_rule("OutputPhotodiode", "AO/AE"),
        component_rule("WeightDAC", "DE/AE"),
        component_rule("InputDAC", "DE/AE"),
        component_rule("OutputADC", "AE/DE"),
        component_rule("GlobalBuffer", "Cache"),
        component_rule("DRAM", "DRAM"),
        component_rule("DramLinkTx", "DRAM"),
        component_rule("DramLinkRx", "DRAM"),
        component_rule("OutputLinkTx", "DRAM"),
        component_rule("OutputLinkRx", "DRAM"),
    ),
    default="Other",
    order=("MRR", "MZM", "Laser", "AO/AE", "DE/AE", "AE/DE", "Cache",
           "DRAM", "Other"),
)

#: Figs. 4-5 dataspace-conversion view.
SYSTEM_BUCKETS = BucketScheme(
    name="system",
    rules=(
        component_rule("WeightDAC", "Weight DE/AE, AE/AO"),
        component_rule("WeightModulator", "Weight DE/AE, AE/AO"),
        component_rule("InputDAC", "Input DE/AE, AE/AO"),
        component_rule("InputMZM", "Input DE/AE, AE/AO"),
        component_rule("OutputADC", "Output AO/AE, AE/DE"),
        component_rule("OutputPhotodiode", "Output AO/AE, AE/DE"),
        component_rule("laser", "Other AO"),
        component_rule("ae_integrator", "Other AO"),
        component_rule("AEIntegrator", "Other AO"),
        component_rule("GlobalBuffer", "On-Chip Buffer"),
        component_rule("DRAM", "DRAM"),
        component_rule("DramLinkTx", "DRAM"),
        component_rule("DramLinkRx", "DRAM"),
        component_rule("OutputLinkTx", "DRAM"),
        component_rule("OutputLinkRx", "DRAM"),
    ),
    default="Other AO",
    order=("Other AO", "Weight DE/AE, AE/AO", "Input DE/AE, AE/AO",
           "Output AO/AE, AE/DE", "On-Chip Buffer", "DRAM"),
)


# ---------------------------------------------------------------------------
# Constraints and the reference mapping
# ---------------------------------------------------------------------------

def albireo_constraints(config: AlbireoConfig,
                        layer: ConvLayer) -> MappingConstraints:
    """Mapping constraints for Albireo.

    The analog integrators may accumulate at most ``or_temporal`` partials;
    the window-site caps come from the architecture itself.  Strided layers
    are handled by :func:`albireo_analysis_layer` (window-discarding), not
    by constraints.
    """
    return MappingConstraints(
        storages={
            "AEIntegrator": StorageConstraint(
                max_temporal_product=config.or_temporal),
        },
    )


def albireo_analysis_layer(layer: ConvLayer) -> ConvLayer:
    """The workload Albireo physically executes for ``layer``.

    Albireo streams input rows through a locally-connected window array
    whose column taps are wired at unit pitch, so along the row it computes
    *every* contiguous window and a column-strided convolution keeps only
    one window in ``stride_w`` — the discarded windows still consume
    cycles, conversions, and laser energy.  Row strides are free: the
    streaming control simply skips emitting the intermediate window rows.
    The executed workload is therefore the layer with its Q dimension
    expanded to unit column stride.  This is the strided-convolution
    under-utilization mechanism of the paper's Fig. 3.
    """
    if layer.stride_w == 1:
        return layer
    return replace(
        layer,
        q=layer.q * layer.stride_w,
        stride_w=1,
    )


def albireo_reference_mapping(
    config: AlbireoConfig,
    layer: ConvLayer,
    channel_mode: str = "fill",
    integrator_mode: str = "divisor",
    dram_protects: str = "auto",
) -> Mapping:
    """Deterministic, capacity-aware reference mapping for one layer.

    Mirrors Albireo's natural dataflow: kernel windows on the site array,
    input channels on wavelengths, output channels across the star coupler
    and clusters, leftover output pixels across remaining clusters and
    weight lanes; reduction leftovers accumulate in the AE integrators up
    to their budget; the global buffer tiles whatever fits, DRAM iterates
    the rest with the permutation protecting the larger tensor.

    The mode arguments choose between padding-for-parallelism and exact
    divisors at the two places where the trade-off is layer-dependent:
    ``channel_mode`` for the wavelength (C) split, ``integrator_mode`` for
    the analog accumulation depth (``"off"`` disables it).
    :func:`albireo_mapping_candidates` enumerates the sensible combinations
    so a system can keep whichever prices cheapest.
    """
    return _albireo_assemble(
        layer,
        _albireo_mapping_pieces(config, layer, channel_mode,
                                integrator_mode),
        dram_protects)


def _albireo_mapping_pieces(
    config: AlbireoConfig,
    layer: ConvLayer,
    channel_mode: str,
    integrator_mode: str,
) -> Tuple:
    """Everything about the reference mapping that does not depend on
    ``dram_protects`` — the expensive factor allocation, computed once
    and shared across the DRAM-permutation variants (the three protection
    choices reorder the same DRAM loops; see
    :func:`albireo_mapping_candidates`)."""
    taker = FactorTaker(layer)

    # --- Spatial assignment, inner fanouts first -----------------------
    r_sp = taker.take(Dim.R, config.window_sites_per_axis)
    s_sp = taker.take(Dim.S, config.window_sites_per_axis)
    c_sp = taker.take(Dim.C, config.wavelengths, mode=channel_mode)
    m_star = taker.take(Dim.M, config.star_ports)
    q_lane = taker.take(Dim.Q, config.weight_lanes)

    cluster_factors = taker.take_budgeted((Dim.M, Dim.Q, Dim.P, Dim.N),
                                          config.clusters)

    spatials = (
        FanoutMapping("clusters", cluster_factors),
        FanoutMapping("weight_lanes",
                      {Dim.Q: q_lane} if q_lane > 1 else {}),
        FanoutMapping("star_coupler",
                      {Dim.M: m_star} if m_star > 1 else {}),
        FanoutMapping("window_sites",
                      {d: f for d, f in ((Dim.R, r_sp), (Dim.S, s_sp))
                       if f > 1}),
        FanoutMapping("wavelengths",
                      {Dim.C: c_sp} if c_sp > 1 else {}),
    )
    spatial_cum = {
        Dim.R: r_sp, Dim.S: s_sp, Dim.C: c_sp, Dim.Q: q_lane, Dim.M: m_star,
    }
    for dim, factor in cluster_factors.items():
        spatial_cum[dim] = spatial_cum.get(dim, 1) * factor

    # --- AE integrator accumulation up to its budget --------------------
    integrator_factors: Dict[Dim, int] = {}
    if integrator_mode != "off":
        integrator_factors = taker.take_budgeted(
            (Dim.C, Dim.R, Dim.S), config.or_temporal, mode=integrator_mode)

    # --- Global-buffer tile: shrink until it fits -----------------------
    gb_factors = shrink_to_fit(
        layer, taker.dims, dict(taker.remaining),
        config.global_buffer_bits * 0.95,
        spatial_cum, integrator_factors,
    )
    dram_factors = taker.residual_after(gb_factors)

    # GB loops: reduction dims innermost so outputs finish accumulating
    # before eviction (protect outputs).
    gb_level = LevelMapping("GlobalBuffer",
                            temporal_loops(gb_factors, GB_ORDER))
    integrator_level = LevelMapping(
        "AEIntegrator",
        temporal_loops(integrator_factors, (Dim.C, Dim.R, Dim.S)))
    return spatials, dram_factors, gb_level, integrator_level


def _albireo_assemble(layer: ConvLayer, pieces: Tuple,
                      dram_protects: str) -> Mapping:
    """Attach the DRAM permutation — the loops keep the protected tensor
    resident across the other's sweep — to the shared mapping pieces."""
    spatials, dram_factors, gb_level, integrator_level = pieces
    dram_order = dram_order_protecting(layer, dram_protects)
    levels = (
        LevelMapping("DRAM", temporal_loops(dram_factors, dram_order)),
        gb_level,
        integrator_level,
    )
    return Mapping(levels=levels, spatials=spatials)


def albireo_mapping_candidates(config: AlbireoConfig,
                               layer: ConvLayer) -> List[Mapping]:
    """The reference-mapping variants worth pricing for one layer.

    Covers the layer-dependent trade-offs: padded-vs-exact wavelength
    splits, analog integration depth on/exact/full, and which tensor the
    DRAM loop order protects.  The factor allocation is computed once per
    (channel, integrator) mode pair and shared by the three protection
    variants, which differ only in DRAM loop order.  Deduplicated;
    typically 4-8 distinct mappings.
    """
    candidates: List[Mapping] = []
    seen = set()
    for channel_mode in ("fill", "divisor"):
        for integrator_mode in ("divisor", "fill", "off"):
            pieces = _albireo_mapping_pieces(config, layer, channel_mode,
                                             integrator_mode)
            for dram_protects in ("weights", "inputs", "outputs"):
                mapping = _albireo_assemble(layer, pieces, dram_protects)
                key = mapping.structure_key()
                if key not in seen:
                    seen.add(key)
                    candidates.append(mapping)
    return candidates


def albireo_best_case_layer(config: Optional[AlbireoConfig] = None,
                            p: int = 32, q: int = 32) -> ConvLayer:
    """A convolution shaped to use Albireo perfectly (Fig. 2's best case).

    Output channels fill the star coupler times the clusters exactly, input
    channels are a multiple of the wavelength count, and the kernel matches
    the window-site array.
    """
    config = config or AlbireoConfig()
    sites = config.window_sites_per_axis
    return ConvLayer(
        name="albireo-best-case",
        m=config.star_ports * config.clusters,
        c=config.wavelengths * 8,
        p=p, q=q, r=sites, s=sites,
        bits_per_weight=config.bits, bits_per_activation=config.bits,
    )


# ---------------------------------------------------------------------------
# The bundled system
# ---------------------------------------------------------------------------

class AlbireoSystem(PhotonicSystem):
    """Albireo ready to evaluate: architecture + energy table + model.

    This is the main entry point users of the library interact with::

        system = AlbireoSystem(AlbireoConfig(scenario=AGGRESSIVE))
        result = system.evaluate_layer(layer)
        print(result.energy.describe(SYSTEM_BUCKETS))

    All shared machinery — the reference-mapping candidate pricing, the
    mapper-search and layer-evaluation ``store`` seam the sweep engine
    memoizes through, fusion-aware network evaluation — lives in
    :class:`~repro.systems.base.PhotonicSystem`; this class contributes
    Albireo's structure and its strided-convolution window expansion.
    """

    name = "albireo"
    config_type = AlbireoConfig
    build_architecture = staticmethod(build_albireo_architecture)
    build_energy_table = staticmethod(build_albireo_energy_table)

    def analysis_layer(self, layer: ConvLayer) -> ConvLayer:
        """The unit-stride workload Albireo physically executes."""
        return albireo_analysis_layer(layer)

    def constraints(self, layer: ConvLayer) -> MappingConstraints:
        return albireo_constraints(self.config, layer)

    def mapping_candidates(self, layer: ConvLayer) -> List[Mapping]:
        return albireo_mapping_candidates(self.config, layer)


# ---------------------------------------------------------------------------
# Registry entry
# ---------------------------------------------------------------------------

def albireo_default_sweep() -> List[AlbireoConfig]:
    """The ``repro sweep --system albireo`` grid: 2 scenarios x 3 cluster
    counts x 2 output-reuse x 2 input-reuse settings = 24 configurations."""
    configs = []
    for scenario in (CONSERVATIVE, AGGRESSIVE):
        for clusters in (8, 16, 32):
            for output_reuse in (3, 9):
                for input_reuse in (9, 27):
                    configs.append(replace(
                        AlbireoConfig(scenario=scenario),
                        clusters=clusters,
                        output_reuse=output_reuse,
                        star_ports=input_reuse,
                    ))
    return configs


register_system(SystemEntry(
    name="albireo",
    config_type=AlbireoConfig,
    system_type=AlbireoSystem,
    build_architecture=build_albireo_architecture,
    build_energy_table=build_albireo_energy_table,
    buckets=SYSTEM_BUCKETS,
    supports_store=True,
    description=("Albireo silicon-photonic CNN accelerator "
                 "(Shiflett et al., ISCA 2021): streamed weights, "
                 "star-coupler input broadcast, locally-connected "
                 "window-site array"),
    default_sweep=albireo_default_sweep,
    sweep_columns=(
        ("scaling", lambda config: config.scenario.name),
        ("clusters", lambda config: config.clusters),
        ("OR", lambda config: config.output_reuse),
        ("IR", lambda config: config.star_ports),
    ),
))
