"""Design-space exploration drivers for the paper's Figs. 4 and 5.

These functions sweep Albireo configurations and return structured points;
the experiment modules format them into the paper's figures and the
benchmarks regenerate them.

Since the sweep-engine refactor they are thin shells: the grids are built
as declarative job lists by :mod:`repro.engine.sweeps` and executed by
:func:`repro.engine.executor.run_jobs`, so every sweep gains ``workers``
(process-pool parallelism) and ``cache`` (persistent memoization of
mapper results and evaluations) for free while returning exactly the same
points as the original serial loops.  System resolution goes through the
pluggable registry (:mod:`repro.systems.registry`, via
:func:`repro.engine.jobs.make_job`'s config-type inference), so
:func:`sweep_configurations` works for any registered system's configs —
mix them freely in one sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.engine.executor import CacheLike, run_jobs
from repro.engine.sweeps import (
    config_sweep_jobs,
    memory_sweep_jobs,
    next_power_of_two_kib,
    pareto_frontier,
    reuse_sweep_jobs,
)
from repro.energy.scaling import ScalingScenario
from repro.model.results import NetworkEvaluation
from repro.systems.albireo import AlbireoConfig
from repro.workloads.network import Network

__all__ = [
    "MemoryExplorationPoint",
    "ReuseExplorationPoint",
    "pareto_frontier",
    "sweep_configurations",
    "sweep_memory_options",
    "sweep_reuse_factors",
]


@dataclass(frozen=True)
class ReuseExplorationPoint:
    """One (OR, IR, variant) point of the Fig. 5 reuse exploration."""

    output_reuse: int
    input_reuse: int
    weight_lanes: int
    variant: str
    evaluation: NetworkEvaluation

    @property
    def energy_per_mac_pj(self) -> float:
        return self.evaluation.energy_per_mac_pj


def sweep_reuse_factors(
    network: Network,
    base_config: AlbireoConfig,
    output_reuse_values: Sequence[int] = (3, 9, 15),
    input_reuse_values: Sequence[int] = (9, 27, 45),
    weight_lane_variants: Sequence[Tuple[str, int]] = (
        ("Original", 1), ("More Weight Reuse", 3),
    ),
    include_dram: bool = False,
    use_mapper: bool = False,
    workers: int = 1,
    cache: CacheLike = None,
    plan: Optional[bool] = None,
) -> List[ReuseExplorationPoint]:
    """Evaluate ``network`` across the paper's Fig. 5 reuse grid.

    Increasing ``star_ports`` (IR) multiplies the broadcast width, so the
    cluster count is scaled down to hold the total MAC count approximately
    constant — the paper explores reuse re-wirings of the same silicon
    budget, not larger chips.  ``include_dram=False`` reproduces the
    figure's accelerator-energy view.
    """
    jobs = reuse_sweep_jobs(
        network, base_config,
        output_reuse_values=output_reuse_values,
        input_reuse_values=input_reuse_values,
        weight_lane_variants=weight_lane_variants,
        include_dram=include_dram,
        use_mapper=use_mapper,
    )
    evaluations = run_jobs(jobs, workers=workers, cache=cache,
                           plan=plan)
    return [
        ReuseExplorationPoint(
            output_reuse=job.tag("output_reuse"),
            input_reuse=job.tag("input_reuse"),
            weight_lanes=job.tag("weight_lanes"),
            variant=job.tag("variant"),
            evaluation=evaluation,
        )
        for job, evaluation in zip(jobs, evaluations)
    ]


@dataclass(frozen=True)
class MemoryExplorationPoint:
    """One (scaling, batching, fusion) point of the Fig. 4 exploration."""

    scenario: ScalingScenario
    batch: int
    fused: bool
    evaluation: NetworkEvaluation

    @property
    def label(self) -> str:
        batching = "Batched" if self.batch > 1 else "Non-Batched"
        fusion = "Fused" if self.fused else "Not Fused"
        return f"{self.scenario.name}/{fusion}/{batching}"

    @property
    def energy_per_mac_pj(self) -> float:
        return self.evaluation.energy_per_mac_pj


def sweep_memory_options(
    network: Network,
    base_config: AlbireoConfig,
    scenarios: Sequence[ScalingScenario],
    batch_sizes: Sequence[int] = (1, 8),
    fusion_options: Sequence[bool] = (False, True),
    fused_buffer_kib: Optional[int] = None,
    use_mapper: bool = False,
    workers: int = 1,
    cache: CacheLike = None,
    plan: Optional[bool] = None,
) -> List[MemoryExplorationPoint]:
    """Evaluate ``network`` across the paper's Fig. 4 memory-system grid.

    Fusion keeps inter-layer activations on chip, which requires a global
    buffer at least as large as the biggest resident footprint; unless
    ``fused_buffer_kib`` overrides it, the fused configurations auto-size
    the buffer to that footprint (rounded up to a power of two), paying the
    higher per-access energy of the larger SRAM — the trade-off the paper
    calls out.
    """
    jobs = memory_sweep_jobs(
        network, base_config, scenarios,
        batch_sizes=batch_sizes,
        fusion_options=fusion_options,
        fused_buffer_kib=fused_buffer_kib,
        use_mapper=use_mapper,
    )
    evaluations = run_jobs(jobs, workers=workers, cache=cache,
                           plan=plan)
    return [
        MemoryExplorationPoint(
            scenario=job.config.scenario,
            batch=job.tag("batch"),
            fused=job.tag("fused"),
            evaluation=evaluation,
        )
        for job, evaluation in zip(jobs, evaluations)
    ]


def sweep_configurations(
    network: Network,
    configs: Sequence[Any],
    use_mapper: bool = False,
    workers: int = 1,
    cache: CacheLike = None,
    plan: Optional[bool] = None,
) -> List[Tuple[Any, NetworkEvaluation]]:
    """Evaluate ``network`` on every configuration (generic DSE driver).

    Configurations may belong to any registered system (the job builder
    infers each one's system tag from its config type)."""
    jobs = config_sweep_jobs(network, configs, use_mapper=use_mapper)
    evaluations = run_jobs(jobs, workers=workers, cache=cache,
                           plan=plan)
    return list(zip(configs, evaluations))


def _next_power_of_two_kib(bits: float) -> int:
    """Backward-compatible alias for
    :func:`repro.engine.sweeps.next_power_of_two_kib`."""
    return next_power_of_two_kib(bits)
