"""Design-space exploration drivers for the paper's Figs. 4 and 5.

These functions sweep Albireo configurations and return structured points;
the experiment modules format them into the paper's figures and the
benchmarks regenerate them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.energy.scaling import ScalingScenario
from repro.model.results import NetworkEvaluation
from repro.systems.albireo import AlbireoConfig, AlbireoSystem
from repro.workloads.network import Network


@dataclass(frozen=True)
class ReuseExplorationPoint:
    """One (OR, IR, variant) point of the Fig. 5 reuse exploration."""

    output_reuse: int
    input_reuse: int
    weight_lanes: int
    variant: str
    evaluation: NetworkEvaluation

    @property
    def energy_per_mac_pj(self) -> float:
        return self.evaluation.energy_per_mac_pj


def sweep_reuse_factors(
    network: Network,
    base_config: AlbireoConfig,
    output_reuse_values: Sequence[int] = (3, 9, 15),
    input_reuse_values: Sequence[int] = (9, 27, 45),
    weight_lane_variants: Sequence[Tuple[str, int]] = (
        ("Original", 1), ("More Weight Reuse", 3),
    ),
    include_dram: bool = False,
    use_mapper: bool = False,
) -> List[ReuseExplorationPoint]:
    """Evaluate ``network`` across the paper's Fig. 5 reuse grid.

    Increasing ``star_ports`` (IR) multiplies the broadcast width, so the
    cluster count is scaled down to hold the total MAC count approximately
    constant — the paper explores reuse re-wirings of the same silicon
    budget, not larger chips.  ``include_dram=False`` reproduces the
    figure's accelerator-energy view.
    """
    base_parallelism = base_config.peak_macs_per_cycle
    points: List[ReuseExplorationPoint] = []
    for variant_name, weight_lanes in weight_lane_variants:
        for input_reuse in input_reuse_values:
            for output_reuse in output_reuse_values:
                lane_scale = (input_reuse // base_config.star_ports) \
                    * weight_lanes
                clusters = max(1, base_config.clusters // lane_scale)
                config = replace(
                    base_config,
                    star_ports=input_reuse,
                    output_reuse=output_reuse,
                    weight_lanes=weight_lanes,
                    clusters=clusters,
                )
                system = AlbireoSystem(config)
                evaluation = _evaluate(system, network, use_mapper,
                                       include_dram)
                points.append(ReuseExplorationPoint(
                    output_reuse=output_reuse,
                    input_reuse=input_reuse,
                    weight_lanes=weight_lanes,
                    variant=variant_name,
                    evaluation=evaluation,
                ))
    return points


@dataclass(frozen=True)
class MemoryExplorationPoint:
    """One (scaling, batching, fusion) point of the Fig. 4 exploration."""

    scenario: ScalingScenario
    batch: int
    fused: bool
    evaluation: NetworkEvaluation

    @property
    def label(self) -> str:
        batching = "Batched" if self.batch > 1 else "Non-Batched"
        fusion = "Fused" if self.fused else "Not Fused"
        return f"{self.scenario.name}/{fusion}/{batching}"

    @property
    def energy_per_mac_pj(self) -> float:
        return self.evaluation.energy_per_mac_pj


def sweep_memory_options(
    network: Network,
    base_config: AlbireoConfig,
    scenarios: Sequence[ScalingScenario],
    batch_sizes: Sequence[int] = (1, 8),
    fusion_options: Sequence[bool] = (False, True),
    fused_buffer_kib: Optional[int] = None,
    use_mapper: bool = False,
) -> List[MemoryExplorationPoint]:
    """Evaluate ``network`` across the paper's Fig. 4 memory-system grid.

    Fusion keeps inter-layer activations on chip, which requires a global
    buffer at least as large as the biggest resident footprint; unless
    ``fused_buffer_kib`` overrides it, the fused configurations auto-size
    the buffer to that footprint (rounded up to a power of two), paying the
    higher per-access energy of the larger SRAM — the trade-off the paper
    calls out.
    """
    points: List[MemoryExplorationPoint] = []
    for scenario in scenarios:
        for fused in fusion_options:
            for batch in batch_sizes:
                batched_network = (network.with_batch(batch)
                                   if batch > 1 else network)
                config = base_config.with_scenario(scenario)
                if fused:
                    required_kib = fused_buffer_kib
                    if required_kib is None:
                        required_bits = batched_network.max_activation_bits \
                            * 1.25  # weight-tile headroom
                        required_kib = _next_power_of_two_kib(required_bits)
                    buffer_kib = max(config.global_buffer_kib, required_kib)
                    # Larger fused buffers keep their bank size constant
                    # (more banks), paying the H-tree growth term of the
                    # SRAM model rather than quadratically longer bitlines.
                    bank_kib = (config.global_buffer_kib
                                // config.global_buffer_banks)
                    config = replace(
                        config,
                        global_buffer_kib=buffer_kib,
                        global_buffer_banks=max(config.global_buffer_banks,
                                                buffer_kib // bank_kib),
                    )
                system = AlbireoSystem(config)
                evaluation = system.evaluate_network(
                    batched_network, fused=fused, use_mapper=use_mapper)
                points.append(MemoryExplorationPoint(
                    scenario=scenario, batch=batch, fused=fused,
                    evaluation=evaluation,
                ))
    return points


def _evaluate(system: AlbireoSystem, network: Network, use_mapper: bool,
              include_dram: bool) -> NetworkEvaluation:
    evaluation = system.evaluate_network(network, use_mapper=use_mapper)
    if include_dram:
        return evaluation
    return _without_dram(evaluation)


def _without_dram(evaluation: NetworkEvaluation) -> NetworkEvaluation:
    """Drop DRAM entries (the accelerator-only view of Figs. 2 and 5)."""
    from repro.model.results import EnergyBreakdown, LayerEvaluation

    stripped = []
    for layer_eval, count in evaluation.layers:
        entries = {
            key: value
            for key, value in layer_eval.energy.entries().items()
            if key[0] != "DRAM"
        }
        stripped.append((
            LayerEvaluation(
                layer=layer_eval.layer,
                energy=EnergyBreakdown(entries),
                cycles=layer_eval.cycles,
                real_macs=layer_eval.real_macs,
                padded_macs=layer_eval.padded_macs,
                peak_parallelism=layer_eval.peak_parallelism,
                clock_ghz=layer_eval.clock_ghz,
                occupancy_bits=layer_eval.occupancy_bits,
            ),
            count,
        ))
    return NetworkEvaluation(
        name=evaluation.name,
        layers=tuple(stripped),
        clock_ghz=evaluation.clock_ghz,
        peak_parallelism=evaluation.peak_parallelism,
    )


def pareto_frontier(points, objectives):
    """Return the Pareto-optimal subset of ``points``.

    ``objectives`` maps each point to a tuple of costs (all minimized).
    A point survives if no other point is at least as good on every
    objective and strictly better on one.  Used by energy-vs-latency
    configuration sweeps.

    >>> pareto_frontier([(1, 5), (2, 2), (3, 3)], lambda p: p)
    [(1, 5), (2, 2)]
    """
    points = list(points)
    costs = [tuple(objectives(point)) for point in points]
    frontier = []
    for i, point in enumerate(points):
        dominated = False
        for j, other in enumerate(costs):
            if j == i:
                continue
            if all(o <= c for o, c in zip(other, costs[i])) \
                    and any(o < c for o, c in zip(other, costs[i])):
                dominated = True
                break
        if not dominated:
            frontier.append(point)
    return frontier


def sweep_configurations(
    network: Network,
    configs: Sequence[AlbireoConfig],
    use_mapper: bool = False,
) -> List[Tuple[AlbireoConfig, NetworkEvaluation]]:
    """Evaluate ``network`` on every configuration (generic DSE driver)."""
    results = []
    for config in configs:
        system = AlbireoSystem(config)
        results.append((config,
                        system.evaluate_network(network,
                                                use_mapper=use_mapper)))
    return results


def _next_power_of_two_kib(bits: float) -> int:
    kib = max(1, int(bits / 8192))
    power = 1
    while power < kib:
        power *= 2
    return power
