"""Design-space exploration drivers for the paper's Figs. 4 and 5.

.. deprecated::
    The ``sweep_*`` functions are thin, deprecated shells over the
    declarative Study facade (:mod:`repro.api`) — new code should build
    a :class:`repro.api.Study` (or use the prebuilt lattices in
    :mod:`repro.api.studies`) and slice the returned
    :class:`~repro.api.ResultSet` directly.  The shims keep their exact
    historical signatures and return the same structured point lists,
    byte-identical to the pre-facade implementations, so existing
    callers keep working while emitting a :class:`DeprecationWarning`.

This module also remains the home of the figure-point dataclasses
(:class:`MemoryExplorationPoint`, :class:`ReuseExplorationPoint`) and
their ResultSet assemblers, which the Fig. 4/5 experiments use without
deprecation.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.api.results import ResultSet
from repro.api.studies import config_study, memory_study, reuse_study
from repro.engine.executor import CacheLike
from repro.engine.sweeps import next_power_of_two_kib, pareto_frontier
from repro.energy.scaling import ScalingScenario
from repro.model.results import NetworkEvaluation
from repro.systems.albireo import AlbireoConfig
from repro.workloads.network import Network

__all__ = [
    "MemoryExplorationPoint",
    "ReuseExplorationPoint",
    "memory_points",
    "pareto_frontier",
    "reuse_points",
    "sweep_configurations",
    "sweep_memory_options",
    "sweep_reuse_factors",
]


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.systems.dse.{name} is deprecated; build a repro.api.Study "
        f"(see repro.api.studies) and use ResultSet instead",
        DeprecationWarning, stacklevel=3)


@dataclass(frozen=True)
class ReuseExplorationPoint:
    """One (OR, IR, variant) point of the Fig. 5 reuse exploration."""

    output_reuse: int
    input_reuse: int
    weight_lanes: int
    variant: str
    evaluation: NetworkEvaluation

    @property
    def energy_per_mac_pj(self) -> float:
        return self.evaluation.energy_per_mac_pj


def reuse_points(results: ResultSet) -> List[ReuseExplorationPoint]:
    """Figure-point view of a :func:`repro.api.studies.reuse_study` run."""
    return [
        ReuseExplorationPoint(
            output_reuse=record.tags["output_reuse"],
            input_reuse=record.tags["input_reuse"],
            weight_lanes=record.tags["weight_lanes"],
            variant=record.tags["variant"],
            evaluation=record.evaluation,
        )
        for record in results
    ]


def sweep_reuse_factors(
    network: Network,
    base_config: AlbireoConfig,
    output_reuse_values: Sequence[int] = (3, 9, 15),
    input_reuse_values: Sequence[int] = (9, 27, 45),
    weight_lane_variants: Sequence[Tuple[str, int]] = (
        ("Original", 1), ("More Weight Reuse", 3),
    ),
    include_dram: bool = False,
    use_mapper: bool = False,
    workers: int = 1,
    cache: CacheLike = None,
    plan: Optional[bool] = None,
) -> List[ReuseExplorationPoint]:
    """Evaluate ``network`` across the paper's Fig. 5 reuse grid.

    .. deprecated:: use :func:`repro.api.studies.reuse_study`.
    """
    _deprecated("sweep_reuse_factors")
    study = reuse_study(
        network, base_config,
        output_reuse_values=output_reuse_values,
        input_reuse_values=input_reuse_values,
        weight_lane_variants=weight_lane_variants,
        include_dram=include_dram,
        use_mapper=use_mapper,
    )
    return reuse_points(study.run(workers=workers, cache=cache, plan=plan))


@dataclass(frozen=True)
class MemoryExplorationPoint:
    """One (scaling, batching, fusion) point of the Fig. 4 exploration."""

    scenario: ScalingScenario
    batch: int
    fused: bool
    evaluation: NetworkEvaluation

    @property
    def label(self) -> str:
        batching = "Batched" if self.batch > 1 else "Non-Batched"
        fusion = "Fused" if self.fused else "Not Fused"
        return f"{self.scenario.name}/{fusion}/{batching}"

    @property
    def energy_per_mac_pj(self) -> float:
        return self.evaluation.energy_per_mac_pj


def memory_points(results: ResultSet) -> List[MemoryExplorationPoint]:
    """Figure-point view of a :func:`repro.api.studies.memory_study`
    run (the scenario object is read back off each record's config)."""
    return [
        MemoryExplorationPoint(
            scenario=record.config.scenario,
            batch=record.tags["batch"],
            fused=record.tags["fused"],
            evaluation=record.evaluation,
        )
        for record in results
    ]


def sweep_memory_options(
    network: Network,
    base_config: AlbireoConfig,
    scenarios: Sequence[ScalingScenario],
    batch_sizes: Sequence[int] = (1, 8),
    fusion_options: Sequence[bool] = (False, True),
    fused_buffer_kib: Optional[int] = None,
    use_mapper: bool = False,
    workers: int = 1,
    cache: CacheLike = None,
    plan: Optional[bool] = None,
) -> List[MemoryExplorationPoint]:
    """Evaluate ``network`` across the paper's Fig. 4 memory-system grid.

    .. deprecated:: use :func:`repro.api.studies.memory_study`.
    """
    _deprecated("sweep_memory_options")
    study = memory_study(
        network, base_config, scenarios,
        batch_sizes=batch_sizes,
        fusion_options=fusion_options,
        fused_buffer_kib=fused_buffer_kib,
        use_mapper=use_mapper,
    )
    return memory_points(study.run(workers=workers, cache=cache, plan=plan))


def sweep_configurations(
    network: Network,
    configs: Sequence[Any],
    use_mapper: bool = False,
    workers: int = 1,
    cache: CacheLike = None,
    plan: Optional[bool] = None,
) -> List[Tuple[Any, NetworkEvaluation]]:
    """Evaluate ``network`` on every configuration (generic DSE driver).

    .. deprecated:: use :func:`repro.api.studies.config_study`.
    """
    _deprecated("sweep_configurations")
    study = config_study(network, configs, use_mapper=use_mapper)
    results = study.run(workers=workers, cache=cache, plan=plan)
    return [(record.config, record.evaluation) for record in results]


def _next_power_of_two_kib(bits: float) -> int:
    """Backward-compatible alias for
    :func:`repro.engine.sweeps.next_power_of_two_kib`."""
    return next_power_of_two_kib(bits)
