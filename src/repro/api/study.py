"""The :class:`Study` builder: one declarative entry point for every
evaluation, sweep, and comparison.

A study composes **systems x configs x networks x scenarios x grid
overrides x batching x fusion** into a job list for the sweep engine::

    from repro.api import Study

    results = (Study()
               .systems("albireo", "wdm_delay")
               .networks("resnet18", "vgg16")
               .scenarios("conservative", "aggressive")
               .grid(global_buffer_kib=(512, 1024))
               .run(workers=4, cache="study-cache"))
    print(results.report(mark_pareto=True))

Nothing evaluates until :meth:`Study.run`, which compiles the point
lattice into :class:`~repro.engine.jobs.EvaluationJob` specs and executes
them through the existing planner/cache/pool
(:func:`~repro.engine.executor.run_jobs`) — so every study gains
process-pool parallelism, persistent memoization, and the two-phase
scheduler for free, with results bit-identical to serial execution.
Execution returns a :class:`~repro.api.results.ResultSet` of tagged
records.

Studies are also expressible as plain data (:meth:`Study.from_dict` /
:meth:`Study.from_json`), which is what the ``repro run spec.json`` CLI
command loads — any study can be written, versioned, and shared without
code.

Compilation order is deterministic row-major over the declared axes:
``source -> scenario -> grid point -> fused -> batch -> network``, where a
*source* is either a registry system (swept from its default config) or
an explicit config object.  Grid keys apply to every source whose config
dataclass has that field; a key matching no source raises.  Per source,
only the *applied* overrides are tagged onto the results, and grid
points that collapse to an already-emitted config (every differing key
unsupported by that source) are emitted once — a record never claims a
coordinate its evaluation ignored.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.api.results import FailedRecord, Record, ResultSet
from repro.energy.scaling import ScalingScenario, scenario_by_name
from repro.engine.executor import (
    CacheLike,
    FailurePolicy,
    JobFailure,
    ProgressFn,
    run_jobs,
)
from repro.engine.pool import WorkerPool
from repro.engine.jobs import EvaluationJob, make_job
from repro.engine.sweeps import parameter_grid
from repro.exceptions import SpecError
from repro.workloads.models import network_by_name
from repro.workloads.network import Network

#: Config-rewrite hook: ``fn(config, point) -> config``, applied after
#: scenario and grid overrides (see :meth:`Study.transform`).
TransformFn = Callable[[Any, "StudyPoint"], Any]

#: Streaming callback: ``fn(record, done, total)``, invoked once per
#: study point the moment its result is assembled (completion order —
#: cache hits first, then whatever finishes next), with ``done`` the
#: number of completed points so far out of ``total``.  ``record`` is
#: the same :class:`~repro.api.results.Record` (or
#: :class:`~repro.api.results.FailedRecord`) the final
#: :class:`~repro.api.results.ResultSet` will hold.  An exception
#: raised by the callback aborts the run — the cancellation lever
#: long-running callers (e.g. :mod:`repro.service`) rely on.
RecordFn = Callable[[Record, int, int], None]

#: Valid top-level keys of a study spec dict (``Study.from_dict``).
SPEC_KEYS = ("name", "systems", "networks", "scenarios", "grid",
             "grid_points", "batches", "fused", "options")
#: Valid keys of a spec's ``options`` object.
OPTION_KEYS = ("use_mapper", "include_dram")


@dataclass(frozen=True)
class StudyPoint:
    """One lattice point's coordinates, as seen by a transform hook.

    ``network`` is the (already batched) workload the point evaluates;
    ``overrides`` are the grid fields applied to the config; ``tags`` are
    the source's user tags.
    """

    system: str
    network: Network
    scenario: Optional[str]
    fused: bool
    batch: int
    overrides: Dict[str, Any] = field(default_factory=dict)
    tags: Dict[str, Any] = field(default_factory=dict)


class Study:
    """Fluent, declarative builder over the sweep engine (see module
    docstring).  Every axis method returns ``self`` and accumulates."""

    def __init__(self, name: str = "study"):
        self.name = name
        #: (system tag, base config, user tags) triples, in declared order.
        self._sources: List[Tuple[str, Any, Dict[str, Any]]] = []
        self._networks: List[Network] = []
        self._scenarios: List[Optional[ScalingScenario]] = []
        self._grid: List[Dict[str, Any]] = []
        self._batches: List[int] = []
        self._fused: List[bool] = []
        self._use_mapper = False
        self._include_dram = True
        self._transform: Optional[TransformFn] = None
        #: Set when the study was built purely from spec data, making
        #: :meth:`to_dict` exact.
        self._spec: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Axes
    # ------------------------------------------------------------------
    def systems(self, *names: str) -> "Study":
        """Add registry systems, each swept from its default config."""
        from repro.systems.registry import get_system

        for name in names:
            entry = get_system(name)  # raises SpecError listing options
            self._sources.append((entry.name, entry.config_type(), {}))
        self._spec = None
        return self

    def configs(self, *configs: Any) -> "Study":
        """Add explicit config objects; each may be a bare config or a
        ``(config, tags)`` pair.  The owning system is inferred from the
        config's type through the registry."""
        from repro.systems.registry import infer_system

        for item in configs:
            config, tags = (item if isinstance(item, tuple) else (item, {}))
            system = infer_system(config)
            if system is None:
                raise SpecError(
                    f"cannot infer system for config type "
                    f"{type(config).__name__}; register the system first")
            self._sources.append((system, config, dict(tags)))
        self._spec = None
        return self

    def networks(self, *networks: Union[str, Network]) -> "Study":
        """Add workloads, by object or by registry name (``resnet18``,
        ``vgg16``, ...)."""
        for network in networks:
            if isinstance(network, str):
                network = network_by_name(network)  # raises listing options
            self._networks.append(network)
        self._spec = None
        return self

    def scenarios(self, *scenarios: Union[str, ScalingScenario]) -> "Study":
        """Add scaling scenarios, by object or name; each source config is
        re-priced under each scenario."""
        for scenario in scenarios:
            if isinstance(scenario, str):
                scenario = scenario_by_name(scenario)
            self._scenarios.append(scenario)
        self._spec = None
        return self

    def grid(self, **axes: Iterable[Any]) -> "Study":
        """Cross a cartesian grid of config-field overrides into the
        study (row-major in axis declaration order)."""
        self._grid.extend(parameter_grid(**axes))
        self._spec = None
        return self

    def grid_points(self,
                    points: Iterable[Mapping[str, Any]]) -> "Study":
        """Add explicit override dicts (a non-cartesian grid)."""
        self._grid.extend(dict(point) for point in points)
        self._spec = None
        return self

    def batches(self, *sizes: int) -> "Study":
        """Add workload batch sizes (``network.with_batch``)."""
        for size in sizes:
            if int(size) < 1:
                raise SpecError(f"batch size must be >= 1, got {size!r}")
            self._batches.append(int(size))
        self._spec = None
        return self

    def fusion(self, *flags: bool) -> "Study":
        """Add layer-fusion options (evaluate unfused and/or fused)."""
        self._fused.extend(_as_bool("fusion flag", flag) for flag in flags)
        self._spec = None
        return self

    def options(self, use_mapper: Optional[bool] = None,
                include_dram: Optional[bool] = None) -> "Study":
        """Set evaluation options shared by every point."""
        if use_mapper is not None:
            self._use_mapper = _as_bool("use_mapper", use_mapper)
        if include_dram is not None:
            self._include_dram = _as_bool("include_dram", include_dram)
        self._spec = None
        return self

    def transform(self, fn: TransformFn) -> "Study":
        """Install a config-rewrite hook ``fn(config, point) -> config``,
        applied after scenario and grid overrides — the escape hatch for
        derived parameters (e.g. auto-sizing a fused buffer to the
        workload's resident footprint)."""
        self._transform = fn
        self._spec = None
        return self

    # ------------------------------------------------------------------
    # Spec form
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "Study":
        """Build a study from plain data (the ``repro run`` spec format).

        Unknown keys, systems, networks, and scenarios raise
        :class:`~repro.exceptions.SpecError` (or the matching layer
        error) with the valid choices listed.
        """
        if not isinstance(spec, Mapping):
            raise SpecError(
                f"study spec must be an object, got {type(spec).__name__}")
        unknown = sorted(set(spec) - set(SPEC_KEYS))
        if unknown:
            raise SpecError(
                f"unknown study spec keys {unknown}; "
                f"options: {sorted(SPEC_KEYS)}")
        options = dict(spec.get("options", {}))
        bad_options = sorted(set(options) - set(OPTION_KEYS))
        if bad_options:
            raise SpecError(
                f"unknown study option keys {bad_options}; "
                f"options: {sorted(OPTION_KEYS)}")
        study = cls(name=str(spec.get("name", "study")))
        study.systems(*_string_list(spec, "systems"))
        study.networks(*_string_list(spec, "networks"))
        study.scenarios(*_string_list(spec, "scenarios"))
        grid = spec.get("grid")
        if grid:
            if not isinstance(grid, Mapping):
                raise SpecError("study spec 'grid' must map field names "
                                "to value lists")
            study.grid(**{str(key): list(values)
                          for key, values in grid.items()})
        if spec.get("grid_points"):
            study.grid_points(spec["grid_points"])
        if spec.get("batches"):
            study.batches(*spec["batches"])
        if spec.get("fused") is not None:
            flags = spec["fused"]
            if isinstance(flags, bool):
                flags = [flags]
            study.fusion(*flags)
        study.options(**options)
        study._spec = _canonical_spec(spec)
        return study

    @classmethod
    def from_json(cls, source: str) -> "Study":
        """Build a study from JSON text or a ``.json`` file path."""
        text = source
        if not source.lstrip().startswith("{"):
            with open(source, "r", encoding="utf-8") as handle:
                text = handle.read()
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"study spec is not valid JSON: {error}") \
                from None
        return cls.from_dict(spec)

    def to_dict(self) -> Dict[str, Any]:
        """The spec-dict form of a study built from plain data.

        Studies holding config objects, network objects, or a transform
        hook have no data form and raise."""
        if self._spec is None:
            raise SpecError(
                "study was built programmatically (config/network objects "
                "or hooks); only from_dict/from_json studies serialize")
        return json.loads(json.dumps(self._spec))  # deep copy

    # ------------------------------------------------------------------
    # Compilation and execution
    # ------------------------------------------------------------------
    def compile(self) -> List[EvaluationJob]:
        """The study's job list, in deterministic lattice order (see
        module docstring).  Pure: compiling evaluates nothing."""
        if not self._sources:
            raise SpecError(
                "study has no systems or configs; call .systems() or "
                ".configs() first")
        if not self._networks:
            raise SpecError("study has no networks; call .networks() first")
        grid = self._grid or [{}]
        self._check_grid_keys(grid)
        scenarios = self._scenarios or [None]
        fused_flags = self._fused or [False]
        batches = self._batches or [1]
        jobs: List[EvaluationJob] = []
        for system, base_config, source_tags in self._sources:
            config_fields = {f.name
                             for f in dataclasses.fields(type(base_config))}
            for scenario in scenarios:
                scoped = base_config
                if scenario is not None:
                    scoped = (scoped.with_scenario(scenario)
                              if hasattr(scoped, "with_scenario")
                              else dataclasses.replace(scoped,
                                                       scenario=scenario))
                seen_applied = set()
                for point_overrides in grid:
                    # Only the overrides this source's config actually has
                    # are applied — and tagged: a record must never claim
                    # a coordinate its evaluation ignored.  Grid points
                    # that collapse to an already-emitted config for this
                    # source (every differing key unsupported) are
                    # skipped rather than duplicated.
                    applied = {key: value
                               for key, value in point_overrides.items()
                               if key in config_fields}
                    applied_key = tuple(sorted(
                        (key, repr(value))
                        for key, value in applied.items()))
                    if applied_key in seen_applied:
                        continue
                    seen_applied.add(applied_key)
                    config = (dataclasses.replace(scoped, **applied)
                              if applied else scoped)
                    for fused in fused_flags:
                        for batch in batches:
                            for network in self._networks:
                                jobs.append(self._make_job(
                                    system, config, network, scenario,
                                    fused, batch, applied,
                                    source_tags))
        return jobs

    def _make_job(self, system: str, config: Any, network: Network,
                  scenario: Optional[ScalingScenario], fused: bool,
                  batch: int, overrides: Dict[str, Any],
                  source_tags: Dict[str, Any]) -> EvaluationJob:
        batched = network.with_batch(batch) if batch > 1 else network
        if self._transform is not None:
            point = StudyPoint(
                system=system, network=batched,
                scenario=None if scenario is None else scenario.name,
                fused=fused, batch=batch,
                overrides=dict(overrides), tags=dict(source_tags))
            config = self._transform(config, point)
        tags: Dict[str, Any] = {
            "system": system,
            "network": batched.name,
            "scenario": (config.scenario.name
                         if hasattr(config, "scenario") else None),
            "fused": fused,
            "batch": batch,
        }
        tags.update(overrides)
        tags.update(source_tags)
        label_parts = [f"{system}:{batched.name}"]
        if hasattr(config, "scenario"):
            label_parts.append(config.scenario.name)
        if fused:
            label_parts.append("fused")
        if batch > 1:
            label_parts.append(f"N={batch}")
        label_parts.extend(f"{key}={value}"
                           for key, value in overrides.items())
        return make_job(
            batched, config, system=system,
            fused=fused, use_mapper=self._use_mapper,
            include_dram=self._include_dram,
            label=" ".join(label_parts), tags=tags)

    def _check_grid_keys(self, grid: Sequence[Dict[str, Any]]) -> None:
        all_fields = set()
        for _, config, _ in self._sources:
            all_fields.update(f.name
                              for f in dataclasses.fields(type(config)))
        grid_keys = {key for point in grid for key in point}
        unknown = sorted(grid_keys - all_fields)
        if unknown:
            raise SpecError(
                f"grid keys {unknown} match no selected system's config "
                f"fields; options: {sorted(all_fields)}")

    def run(self, workers: int = 1, cache: CacheLike = None,
            plan: Optional[bool] = None,
            progress: Optional[ProgressFn] = None,
            trace: Union[bool, str, "obs.Tracer", None] = None,
            pool: Optional[WorkerPool] = None,
            failure_policy: Optional[FailurePolicy] = None,
            inject: Any = None,
            on_record: Optional[RecordFn] = None) -> ResultSet:
        """Compile and execute through the engine; returns a
        :class:`~repro.api.results.ResultSet` in lattice order.

        ``workers``/``cache``/``plan`` are the engine's knobs: process
        pool size, persistent :class:`~repro.engine.cache.EvaluationCache`
        (or directory path), and the two-phase planner toggle.

        ``pool`` reuses a caller-owned persistent
        :class:`~repro.engine.pool.WorkerPool` across runs: its workers
        stay warm between studies and receive only the cache entries they
        have not seen yet (the delta-sync protocol), eliminating the
        per-run spawn and snapshot cost.  The caller closes the pool
        (or uses it as a context manager).

        ``trace`` turns on :mod:`repro.obs` span collection for this run:
        ``True`` collects, a string path additionally writes the Chrome
        trace JSON there, and an existing :class:`~repro.obs.Tracer`
        records into the caller's tracer.  The collected
        :class:`~repro.obs.Trace` is exposed as ``ResultSet.trace``
        (``None`` when tracing was off).

        ``failure_policy`` (a :class:`~repro.engine.executor.
        FailurePolicy`) makes the run fault-tolerant: failing points
        come back as :class:`~repro.api.results.FailedRecord` rows
        (see ``ResultSet.ok()`` / ``.failures``) instead of aborting
        the study.  ``inject`` threads a deterministic fault plan
        (:mod:`repro.engine.faults`) through for testing.

        ``on_record`` (a :data:`RecordFn`) streams each point's record
        out the moment it is assembled — ``fn(record, done, total)``,
        in completion order, on every execution path — without waiting
        for the full :class:`ResultSet`.  This is the seam the
        evaluation service uses to stream NDJSON records and the CLI
        uses for ``--progress`` lines.
        """
        if trace is None or trace is False:
            jobs = self.compile()
            evaluations = run_jobs(jobs, workers=workers, cache=cache,
                                   progress=progress, plan=plan, pool=pool,
                                   failure_policy=failure_policy,
                                   inject=inject,
                                   on_record=self._stream_adapter(
                                       jobs, on_record))
            return ResultSet(
                self._record(job, evaluation)
                for job, evaluation in zip(jobs, evaluations))
        tracer = trace if isinstance(trace, obs.Tracer) else obs.Tracer()
        with obs.tracing(tracer):
            with obs.span("study.compile", study=self.name):
                jobs = self.compile()
            evaluations = run_jobs(jobs, workers=workers, cache=cache,
                                   progress=progress, plan=plan, pool=pool,
                                   failure_policy=failure_policy,
                                   inject=inject,
                                   on_record=self._stream_adapter(
                                       jobs, on_record))
        collected = tracer.trace()
        if isinstance(trace, str):
            collected.save(trace)
        return ResultSet(
            (self._record(job, evaluation)
             for job, evaluation in zip(jobs, evaluations)),
            trace=collected)

    def _stream_adapter(self, jobs: Sequence[EvaluationJob],
                        on_record: Optional[RecordFn]):
        """The engine-level ``on_record`` callback wrapping a study-level
        :data:`RecordFn`: turns each ``(index, job, outcome)`` completion
        into the same :class:`Record` the final result set will hold and
        counts completions (``None`` passes straight through, keeping
        the un-streamed path zero-cost)."""
        if on_record is None:
            return None
        total = len(jobs)
        completed = [0]

        def emit(index: int, job: EvaluationJob, outcome: Any) -> None:
            completed[0] += 1
            on_record(self._record(job, outcome), completed[0], total)

        return emit

    @staticmethod
    def _record(job: EvaluationJob, evaluation: Any) -> Record:
        """One outcome slot -> one record (failures included)."""
        if isinstance(evaluation, JobFailure):
            return FailedRecord.from_failure(job.tags_dict, evaluation,
                                             config=job.config)
        return Record.from_evaluation(job.tags_dict, evaluation,
                                      config=job.config)

    def __repr__(self) -> str:
        return (f"Study({self.name!r}: {len(self._sources)} sources, "
                f"{len(self._networks)} networks, "
                f"{len(self._scenarios) or 1} scenarios, "
                f"{len(self._grid) or 1} grid points)")


def _as_bool(name: str, value: Any) -> bool:
    """Strict boolean coercion: JSON/Python booleans (and 0/1) only.

    A spec author writing the *string* ``"false"`` must get an error, not
    a silently-enabled option (``bool("false")`` is True)."""
    if isinstance(value, bool):
        return value
    if value in (0, 1):
        return bool(value)
    raise SpecError(
        f"{name} must be a boolean, got {value!r}")


def _string_list(spec: Mapping[str, Any], key: str) -> List[str]:
    values = spec.get(key) or []
    if isinstance(values, str):
        values = [values]
    if not isinstance(values, (list, tuple)):
        raise SpecError(f"study spec {key!r} must be a list of names")
    return [str(value) for value in values]


def _canonical_spec(spec: Mapping[str, Any]) -> Dict[str, Any]:
    """A plain-data deep copy of a validated spec (stable key order)."""
    return json.loads(json.dumps(
        {key: spec[key] for key in SPEC_KEYS if key in spec}))
