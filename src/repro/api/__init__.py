"""repro.api — the declarative Study/ResultSet facade.

One programmatic surface for every evaluation, sweep, and comparison the
library can run: build a :class:`Study` (fluently or from a JSON spec),
execute it through the parallel/cached sweep engine with
:meth:`Study.run`, and slice the returned :class:`ResultSet`::

    from repro.api import Study

    results = (Study()
               .systems("albireo", "wdm_delay")
               .networks("resnet18")
               .scenarios("conservative", "aggressive")
               .run(workers=4, cache="study-cache"))
    print(results.report(mark_pareto=True))
    best = results.best("energy_per_mac_pj")

The figure experiments, the ``repro.systems.dse`` drivers, and the CLI's
``sweep``/``compare``/``run`` commands are all thin shells over this
module; :mod:`repro.api.studies` holds the prebuilt lattices they use.
"""

from repro.api.results import (
    FAILURE_KEYS,
    METRIC_NAMES,
    FailedRecord,
    Record,
    ResultSet,
)
from repro.api.studies import (
    comparison_study,
    config_study,
    memory_study,
    reuse_study,
)
from repro.api.study import Study, StudyPoint
from repro.engine.executor import FailurePolicy
from repro.engine.pool import WorkerPool

__all__ = [
    "FAILURE_KEYS",
    "METRIC_NAMES",
    "FailedRecord",
    "FailurePolicy",
    "Record",
    "ResultSet",
    "Study",
    "StudyPoint",
    "WorkerPool",
    "comparison_study",
    "config_study",
    "memory_study",
    "reuse_study",
]
