"""Prebuilt studies for the paper's explorations.

Each builder returns an un-run :class:`~repro.api.study.Study` whose
compiled job list is identical — same configs, same order, same options —
to the hand-rolled sweeps it replaces
(:mod:`repro.engine.sweeps`/:mod:`repro.systems.dse`), so the figure
experiments rewired through them produce byte-identical output.  Callers
pick the execution knobs at :meth:`~repro.api.study.Study.run` time.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Iterable, Optional, Sequence, Tuple

from repro.api.study import Study, StudyPoint
from repro.engine.sweeps import next_power_of_two_kib
from repro.workloads.network import Network


def memory_study(
    network: Network,
    base_config: Any,
    scenarios: Sequence[Any],
    batch_sizes: Sequence[int] = (1, 8),
    fusion_options: Sequence[bool] = (False, True),
    fused_buffer_kib: Optional[int] = None,
    use_mapper: bool = False,
) -> Study:
    """The Fig. 4 memory-system lattice: scaling x fusion x batching.

    Fused points auto-size the global buffer to the largest resident
    activation footprint (power-of-two KiB with weight-tile headroom)
    unless ``fused_buffer_kib`` overrides it; bank size is held constant
    so larger buffers pay the SRAM model's H-tree growth term.
    """

    def size_fused_buffer(config: Any, point: StudyPoint) -> Any:
        if not point.fused:
            return config
        required_kib = fused_buffer_kib
        if required_kib is None:
            required_bits = point.network.max_activation_bits \
                * 1.25  # weight-tile headroom
            required_kib = next_power_of_two_kib(required_bits)
        buffer_kib = max(config.global_buffer_kib, required_kib)
        bank_kib = (config.global_buffer_kib
                    // config.global_buffer_banks)
        return replace(
            config,
            global_buffer_kib=buffer_kib,
            global_buffer_banks=max(config.global_buffer_banks,
                                    buffer_kib // bank_kib))

    return (Study("memory-exploration")
            .configs(base_config)
            .networks(network)
            .scenarios(*scenarios)
            .fusion(*fusion_options)
            .batches(*batch_sizes)
            .options(use_mapper=use_mapper, include_dram=True)
            .transform(size_fused_buffer))


def reuse_study(
    network: Network,
    base_config: Any,
    output_reuse_values: Sequence[int] = (3, 9, 15),
    input_reuse_values: Sequence[int] = (9, 27, 45),
    weight_lane_variants: Sequence[Tuple[str, int]] = (
        ("Original", 1), ("More Weight Reuse", 3),
    ),
    include_dram: bool = False,
    use_mapper: bool = False,
) -> Study:
    """The Fig. 5 reuse lattice as explicit tagged configs.

    Raising IR multiplies the broadcast width, so cluster count scales
    down to hold the MAC budget roughly constant — the paper explores
    re-wirings of the same silicon, not larger chips.
    """
    tagged = []
    for variant_name, weight_lanes in weight_lane_variants:
        for input_reuse in input_reuse_values:
            for output_reuse in output_reuse_values:
                lane_scale = (input_reuse // base_config.star_ports) \
                    * weight_lanes
                clusters = max(1, base_config.clusters // lane_scale)
                config = replace(
                    base_config,
                    star_ports=input_reuse,
                    output_reuse=output_reuse,
                    weight_lanes=weight_lanes,
                    clusters=clusters,
                )
                tagged.append((config, {
                    "variant": variant_name,
                    "output_reuse": output_reuse,
                    "input_reuse": input_reuse,
                    "weight_lanes": weight_lanes,
                }))
    return (Study("reuse-exploration")
            .configs(*tagged)
            .networks(network)
            .options(use_mapper=use_mapper, include_dram=include_dram))


def config_study(
    network: Network,
    configs: Iterable[Any],
    use_mapper: bool = False,
) -> Study:
    """One point per explicit configuration (the generic DSE driver);
    configs may belong to any mix of registered systems."""
    tagged = [(config, {"index": index})
              for index, config in enumerate(configs)]
    return (Study("config-sweep")
            .configs(*tagged)
            .networks(network)
            .options(use_mapper=use_mapper))


def comparison_study(
    networks: Sequence[Network],
    systems: Sequence[str],
    scenario: Any,
    use_mapper: bool = False,
) -> Study:
    """Every requested system's default config over every workload under
    one scaling scenario (the cross-system comparison experiment)."""
    return (Study("system-comparison")
            .systems(*systems)
            .networks(*networks)
            .scenarios(scenario)
            .options(use_mapper=use_mapper))
