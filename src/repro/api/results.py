"""Tagged result records and the :class:`ResultSet` container.

Every evaluation a :class:`~repro.api.study.Study` runs comes back as a
:class:`Record`: the point's coordinates (system, network, scenario,
grid overrides, user tags) plus the scalar metrics of its
:class:`~repro.model.results.NetworkEvaluation`.  A :class:`ResultSet`
holds an ordered list of records and offers the relational verbs every
sweep front-end used to reimplement ad hoc — ``filter``, ``group_by``,
``pareto``, ``top_k`` — plus serialization (``to_records`` /
``to_json`` / ``to_csv``) and ASCII-table rendering (``report``).

Records built by a study keep the full :class:`NetworkEvaluation` (and
the evaluated config) for deep inspection; records rebuilt from
serialized rows carry tags and metrics only — every ResultSet verb works
on both.

A study run under a non-fail-stop
:class:`~repro.engine.executor.FailurePolicy` can return *partial*
results: coordinates that failed come back as :class:`FailedRecord`
rows — same tags, no metrics, plus the error type/message and attempt
count.  ``ResultSet.ok()`` / ``ResultSet.failures`` split the two;
ranking verbs (``pareto``, ``top_k``, ``best``) quietly ignore failed
rows, and serialization round-trips them (a row with an ``error`` key
rebuilds as a :class:`FailedRecord`).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.engine.sweeps import pareto_frontier
from repro.exceptions import SpecError
from repro.model.results import NetworkEvaluation
from repro.report.ascii import format_table

#: Scalar metrics extracted from every evaluation, in presentation order.
#: These names are the split line between ``tags`` and ``metrics`` when a
#: record is rebuilt from a flat row (:meth:`ResultSet.from_records`).
METRIC_NAMES: Tuple[str, ...] = (
    "energy_per_mac_pj",
    "energy_pj",
    "latency_ns",
    "macs_per_cycle",
    "utilization",
    "total_macs",
    "total_cycles",
)


@dataclass(frozen=True)
class Record:
    """One evaluated study point: coordinates, metrics, and (when fresh)
    the full evaluation object."""

    tags: Dict[str, Any]
    metrics: Dict[str, float]
    evaluation: Optional[NetworkEvaluation] = field(default=None,
                                                    compare=False)
    config: Any = field(default=None, compare=False)

    #: Discriminator for partial results (True on :class:`FailedRecord`).
    failed: ClassVar[bool] = False

    @classmethod
    def from_evaluation(cls, tags: Mapping[str, Any],
                        evaluation: NetworkEvaluation,
                        config: Any = None) -> "Record":
        metrics = {name: getattr(evaluation, name) for name in METRIC_NAMES}
        return cls(tags=dict(tags), metrics=metrics,
                   evaluation=evaluation, config=config)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """The tag or metric named ``key`` (tags shadow metrics)."""
        if key in self.tags:
            return self.tags[key]
        return self.metrics.get(key, default)

    def value(self, key: str) -> Any:
        """Strict :meth:`get`: unknown keys raise with the options listed."""
        if key in self.tags:
            return self.tags[key]
        if key in self.metrics:
            return self.metrics[key]
        raise SpecError(
            f"record has no tag or metric {key!r}; "
            f"tags: {sorted(self.tags)}, metrics: {sorted(self.metrics)}")

    def __getitem__(self, key: str) -> Any:
        return self.value(key)

    def __contains__(self, key: str) -> bool:
        return key in self.tags or key in self.metrics

    def to_dict(self) -> Dict[str, Any]:
        """One flat row: tags first, then metrics (tags shadow metrics)."""
        row = dict(self.tags)
        for name, value in self.metrics.items():
            row.setdefault(name, value)
        return row


#: The extra flat-row keys a :class:`FailedRecord` carries in place of
#: metrics; a serialized row holding ``"error"`` rebuilds as failed.
FAILURE_KEYS: Tuple[str, ...] = ("error", "error_message", "attempts",
                                 "quarantined")


@dataclass(frozen=True)
class FailedRecord(Record):
    """A study point that failed under a non-fail-stop failure policy.

    Carries the coordinates (``tags``) like any record, no metrics, and
    the failure facts: the exception type name, its message, how many
    times the job was attempted, and whether the cache quarantined it
    as deterministically poisonous.
    """

    error: str = "ReproError"
    error_message: str = ""
    attempts: int = 1
    quarantined: bool = False

    failed: ClassVar[bool] = True

    @classmethod
    def from_failure(cls, tags: Mapping[str, Any], failure: Any,
                     config: Any = None) -> "FailedRecord":
        """Build from an executor :class:`~repro.engine.executor.
        JobFailure` outcome slot."""
        return cls(tags=dict(tags), metrics={}, config=config,
                   error=failure.error,
                   error_message=failure.message,
                   attempts=failure.attempts,
                   quarantined=failure.quarantined)

    def get(self, key: str, default: Any = None) -> Any:
        if key in self.tags:
            return self.tags[key]
        if key in FAILURE_KEYS:
            return getattr(self, key)
        return self.metrics.get(key, default)

    def value(self, key: str) -> Any:
        if key in self.tags or key in FAILURE_KEYS:
            return self.get(key)
        raise SpecError(
            f"failed record has no tag {key!r} (and no metrics — it "
            f"failed with {self.error}: {self.error_message}); "
            f"tags: {sorted(self.tags)}, failure keys: "
            f"{list(FAILURE_KEYS)}")

    def __contains__(self, key: str) -> bool:
        return key in self.tags or key in FAILURE_KEYS

    def to_dict(self) -> Dict[str, Any]:
        """One flat row: tags first, then the failure facts."""
        row = dict(self.tags)
        row.setdefault("error", self.error)
        row.setdefault("error_message", self.error_message)
        row.setdefault("attempts", self.attempts)
        row.setdefault("quarantined", self.quarantined)
        return row


#: ``filter`` predicate signature.
Predicate = Callable[[Record], bool]


class ResultSet:
    """An ordered, immutable collection of :class:`Record` objects.

    ``trace`` carries the :class:`~repro.obs.Trace` collected when the
    producing run had tracing on (``Study.run(trace=...)``); it is
    metadata, not identity — two result sets with equal records compare
    equal regardless of their traces.
    """

    def __init__(self, records: Iterable[Record] = (), trace: Any = None):
        self._records: Tuple[Record, ...] = tuple(records)
        self.trace = trace

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(self._records[index])
        return self._records[index]

    def __bool__(self) -> bool:
        return bool(self._records)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self._records == other._records

    def __repr__(self) -> str:
        return f"ResultSet({len(self._records)} records)"

    @property
    def records(self) -> Tuple[Record, ...]:
        return self._records

    # ------------------------------------------------------------------
    # Partial results
    # ------------------------------------------------------------------
    def ok(self) -> "ResultSet":
        """The successfully evaluated records only."""
        return ResultSet(record for record in self._records
                         if not record.failed)

    @property
    def failures(self) -> "ResultSet":
        """The :class:`FailedRecord` rows (empty on a fully clean run)."""
        return ResultSet(record for record in self._records
                         if record.failed)

    # ------------------------------------------------------------------
    # Relational verbs
    # ------------------------------------------------------------------
    def filter(self, predicate: Optional[Predicate] = None,
               **equals: Any) -> "ResultSet":
        """Records matching ``predicate`` and/or tag/metric equality.

        >>> rs.filter(system="albireo", fused=True)      # doctest: +SKIP
        >>> rs.filter(lambda r: r["utilization"] > 0.5)  # doctest: +SKIP
        """
        kept = []
        for record in self._records:
            if predicate is not None and not predicate(record):
                continue
            if any(record.get(key, _MISSING) != value
                   for key, value in equals.items()):
                continue
            kept.append(record)
        return ResultSet(kept)

    def only(self, **equals: Any) -> Record:
        """The single record matching the equality filter; raises unless
        exactly one matches."""
        matched = self.filter(**equals)
        if len(matched) != 1:
            raise SpecError(
                f"expected exactly one record matching {equals!r}, "
                f"found {len(matched)}")
        return matched[0]

    def group_by(self, key: str) -> "Dict[Any, ResultSet]":
        """Partition by a tag/metric value, preserving record order.

        Records without ``key`` group under ``None`` (so a missing tag is
        visible as its own bucket rather than an error or a silent drop).
        """
        groups: Dict[Any, List[Record]] = {}
        for record in self._records:
            groups.setdefault(record.get(key), []).append(record)
        return {value: ResultSet(records)
                for value, records in groups.items()}

    def pareto(self, *metrics: str) -> "ResultSet":
        """The Pareto-optimal records (all metrics minimized), in input
        order.  Defaults to the energy-vs-latency frontier; records with
        duplicate cost tuples on the frontier all survive.
        """
        names = metrics or ("energy_per_mac_pj", "latency_ns")
        return ResultSet(pareto_frontier(
            self.ok().records,
            lambda record: tuple(record.value(name) for name in names)))

    def top_k(self, k: int, metric: str = "energy_per_mac_pj",
              largest: bool = False) -> "ResultSet":
        """The ``k`` best records by one metric (smallest first by
        default); ties keep input order (stable sort).  Failed records
        never rank."""
        ranked = sorted(self.ok().records,
                        key=lambda record: record.value(metric),
                        reverse=largest)
        return ResultSet(ranked[:max(0, k)])

    def best(self, metric: str = "energy_per_mac_pj") -> Record:
        """The single minimal record by ``metric`` (among successes)."""
        candidates = self.ok().records
        if not candidates:
            raise SpecError("best() on an empty ResultSet"
                            if not self._records else
                            "best() on a ResultSet with no successful "
                            "records (all rows failed)")
        return min(candidates, key=lambda record: record.value(metric))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_records(self) -> List[Dict[str, Any]]:
        """Flat rows (tags + metrics), ready for JSON/CSV/dataframes."""
        return [record.to_dict() for record in self._records]

    @classmethod
    def from_records(cls, rows: Iterable[Mapping[str, Any]]) -> "ResultSet":
        """Rebuild from flat rows: :data:`METRIC_NAMES` keys become
        metrics, everything else becomes tags.  A row carrying an
        ``error`` key rebuilds as a :class:`FailedRecord`.  The inverse
        of :meth:`to_records` (evaluation objects are not
        round-tripped)."""
        records: List[Record] = []
        for row in rows:
            if "error" in row:
                tags = {key: value for key, value in row.items()
                        if key not in METRIC_NAMES
                        and key not in FAILURE_KEYS}
                records.append(FailedRecord(
                    tags=tags, metrics={},
                    error=str(row["error"]),
                    error_message=str(row.get("error_message", "")),
                    attempts=int(row.get("attempts", 1)),
                    quarantined=bool(row.get("quarantined", False))))
                continue
            tags = {key: value for key, value in row.items()
                    if key not in METRIC_NAMES}
            metrics = {key: value for key, value in row.items()
                       if key in METRIC_NAMES}
            records.append(Record(tags=tags, metrics=metrics))
        return cls(records)

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """JSON array of the flat rows; also written to ``path`` if given."""
        text = json.dumps(self.to_records(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        """Rebuild from :meth:`to_json` output."""
        rows = json.loads(text)
        if not isinstance(rows, list):
            raise SpecError("ResultSet JSON must be an array of records")
        return cls.from_records(rows)

    def columns(self) -> Tuple[List[str], List[str]]:
        """(tag keys, metric keys) in first-seen order across records."""
        tag_keys: List[str] = []
        metric_keys: List[str] = []
        for record in self._records:
            for key in record.tags:
                if key not in tag_keys:
                    tag_keys.append(key)
            for key in record.metrics:
                if key not in metric_keys:
                    metric_keys.append(key)
        return tag_keys, metric_keys

    def to_csv(self, path: Optional[str] = None) -> str:
        """CSV text (tags then metrics, header row first); also written
        to ``path`` if given.  An empty set renders as an empty string.
        When the set holds failed records the failure columns are
        appended (blank on successful rows)."""
        tag_keys, metric_keys = self.columns()
        header = tag_keys + metric_keys
        if any(record.failed for record in self._records):
            header += [key for key in FAILURE_KEYS if key not in header]
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        if header:
            writer.writerow(header)
            for record in self._records:
                writer.writerow([record.get(key, "") for key in header])
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(text)
        return text

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def report(self,
               columns: Optional[Sequence[str]] = None,
               metrics: Optional[Sequence[str]] = None,
               title: Optional[str] = None,
               mark_pareto: Union[bool, Sequence[str]] = False) -> str:
        """An aligned ASCII table of the set.

        ``columns`` defaults to every tag key (first-seen order) and
        ``metrics`` to the headline three (pJ/MAC, latency, utilization).
        ``mark_pareto`` adds a ``Pareto`` star column — pass ``True`` for
        the default energy-vs-latency frontier or a metric-name sequence
        for a custom one.
        """
        tag_keys, _ = self.columns()
        columns = list(columns) if columns is not None else tag_keys
        metrics = list(metrics) if metrics is not None else [
            "energy_per_mac_pj", "latency_ns", "utilization"]
        if not self._records:
            body = "(no records)"
            return f"{title}\n{body}" if title else body
        frontier_ids = set()
        if mark_pareto:
            names = () if mark_pareto is True else tuple(mark_pareto)
            frontier_ids = {id(record)
                            for record in self.pareto(*names)}
        rows = []
        for record in self._records:
            row = [_render(record.get(key, "")) for key in columns]
            if record.failed and metrics:
                # No metrics to show — surface the error type in the
                # first metric column instead of a row of blanks.
                row.extend([f"FAILED:{record.get('error')}"]
                           + ["-"] * (len(metrics) - 1))
            else:
                row.extend(_render_metric(name, record.value(name))
                           for name in metrics)
            if mark_pareto:
                row.append("*" if id(record) in frontier_ids else "")
            rows.append(tuple(row))
        headers = tuple(columns) + tuple(_METRIC_HEADERS.get(name, name)
                                         for name in metrics)
        align = [False] * len(columns) + [True] * len(metrics)
        if mark_pareto:
            headers += ("Pareto",)
            align += [False]
        table = format_table(headers, rows, align_right=align)
        return f"{title}\n{table}" if title else table


_MISSING = object()

_METRIC_HEADERS = {
    "energy_per_mac_pj": "pJ/MAC",
    "energy_pj": "energy pJ",
    "latency_ns": "latency ms",
    "macs_per_cycle": "MACs/cycle",
    "utilization": "util",
    "total_macs": "MACs",
    "total_cycles": "cycles",
}


def _render(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _render_metric(name: str, value: Any) -> str:
    if name == "energy_per_mac_pj":
        return f"{value:.4f}"
    if name == "latency_ns":
        return f"{value / 1e6:.3f}"
    if name == "utilization":
        return f"{value:.1%}"
    if name in ("total_macs", "total_cycles", "macs_per_cycle"):
        return f"{value:.0f}"
    return _render(value)
