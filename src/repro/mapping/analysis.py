"""Exact access-count analysis of a mapped loop nest.

Given (architecture, layer, mapping), :class:`NestAnalyzer` computes the
quantities every result in the paper is built from:

* per storage level and dataspace: reads, writes (fills / update traffic);
* per converter stage: conversion events (the paper's central cost);
* compute events, cycles, per-level occupancy, and utilization.

The method is the analytical dataflow model of Timeloop, reimplemented from
its defining equations:

**Temporal reuse (fills).**  A storage level holds one tile of each of its
dataspaces.  Walking the temporal loops *above* the level from innermost to
outermost, the tile stays resident across the initial contiguous run of
loops irrelevant to the dataspace (pure temporal reuse); the first relevant
loop changes the tile, and every loop outside that point — relevant or not —
multiplies the number of times the tile must be (re)fetched, because an
intervening relevant sweep evicts it.  Loops of bound 1 are transparent.

**Spatial behaviour (multicast / reduction).**  Crossing a fanout boundary,
traffic for a dataspace is divided by the product of spatial factors on
dimensions *irrelevant* to it — if and only if the boundary declares
multicast capability for that dataspace (a star coupler broadcasting inputs,
a DE network forking weights).  For outputs the dual operation is spatial
reduction over reduction-dimension factors (photodiodes summing wavelengths,
analog summation trees), optionally capped by ``reduction_limit``.

**Output accumulation.**  Outputs flow inward-to-outward.  At each level,
incoming partial-sum updates are absorbed by read-modify-write until the
tile's accumulation (the initial run of reduction loops above the level)
completes; each residency then writes back once.  Reduction loops above the
first output-relevant loop force mid-accumulation writebacks (spills) whose
merging happens at the parent via RMW — the accumulate-at-parent policy real
designs use, which needs no downward partial-sum path.

Every element-copy crossing a converter stage's position costs one
conversion event; multicast boundaries below a converter therefore amortize
it, which is exactly the "convert once, reuse spatially" lever the paper's
Fig. 5 explores.

Search-context design (the mapper hot path)
-------------------------------------------

Mapping search evaluates thousands of candidates against the *same*
(architecture, layer) pair, so everything that depends only on that pair is
hoisted into a shared :class:`SearchContext`:

* a flattened **node plan** (innermost-first) with each node's kind,
  dataspace list, capacity, and converter wiring pre-resolved — the walk
  never touches ``isinstance`` or frozensets;
* **memo tables** for fill events (keyed by the loop-above signature) and
  tile sizes (keyed by cumulative bounds), shared across every candidate of
  a search — most candidates differ in only one or two levels, so these hit
  constantly;
* a **validate-once protocol**: :class:`Mapper` validates each candidate
  exactly once and constructs the analyzer with ``validate=False``, removing
  the duplicate :meth:`Mapping.validate` the constructor used to run;
* a cheap **early capacity check** (:meth:`SearchContext.
  capacity_violation`) that bounds per-level occupancy before full analysis
  and pricing.

:meth:`NestAnalyzer.analyze` itself is a single inner-to-outer pass that
maintains the cumulative per-dimension bounds, the spatial-instance product,
and the loops-above signature incrementally, instead of rebuilding
``_loops_above`` (O(levels^2)) and per-node cumulative-bound dictionaries
(O(nodes x dims)) for every tile-size query.  Results are bit-identical to
the original formulation (see ``tests/test_analysis_equivalence.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping as TMapping, Optional, Sequence, Tuple

try:  # numpy powers the batched candidate-axis analysis; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: True when the vectorized batch analyzer is available.  Callers fall
#: back to per-candidate scalar evaluation when it is not.
HAVE_NUMPY = _np is not None

from repro.arch.hierarchy import (
    Architecture,
    ComputeLevel,
    ConverterStage,
    SpatialFanout,
    StorageLevel,
)
from repro.exceptions import CapacityError, MappingError
from repro.mapping.mapping import Mapping, TemporalLoop
from repro.obs import current_tracer
from repro.workloads.dataspace import (
    ALL_DATASPACES,
    DataSpace,
    dataspace_tile_size,
    reduction_dims,
    relevant_dims,
)
from repro.workloads.dims import ALL_DIMS, Dim
from repro.workloads.layer import ConvLayer

_DIM_INDEX: Dict[Dim, int] = {dim: index for index, dim in enumerate(ALL_DIMS)}
_N, _M, _C, _P, _Q, _R, _S = (_DIM_INDEX[d] for d in
                              (Dim.N, Dim.M, Dim.C, Dim.P, Dim.Q,
                               Dim.R, Dim.S))


@dataclass
class StorageCounts:
    """Access counts for one storage level, split by dataspace."""

    reads: Dict[DataSpace, float] = field(default_factory=dict)
    writes: Dict[DataSpace, float] = field(default_factory=dict)

    @property
    def total_reads(self) -> float:
        return sum(self.reads.values())

    @property
    def total_writes(self) -> float:
        return sum(self.writes.values())


@dataclass
class AccessCounts:
    """Everything the evaluation layer needs to price a mapped layer."""

    #: Per storage-level access counts (element granularity).
    storage: Dict[str, StorageCounts]
    #: Per converter-stage, per dataspace conversion events.
    conversions: Dict[str, Dict[DataSpace, float]]
    #: Scheduled MAC iterations including padding (energy accounting basis).
    padded_macs: int
    #: Real MAC operations of the layer (throughput accounting basis).
    real_macs: int
    #: Total cycles (product of all temporal loop bounds).
    cycles: int
    #: Per storage-level occupancy in bits (per instance).
    occupancy_bits: Dict[str, float]
    #: Per storage-level instance counts.
    instances: Dict[str, int]
    #: Padding-induced compute utilization (real/padded, <= 1).
    padding_utilization: float
    #: Per storage-level cycles needed to move the level's traffic through
    #: its bandwidth (only levels that declare a bandwidth appear here).
    bandwidth_cycles: Dict[str, float] = field(default_factory=dict)
    #: Per storage-level total traffic in bits (reads + writes).
    traffic_bits: Dict[str, float] = field(default_factory=dict)

    def converter_events(self, name: str) -> float:
        return sum(self.conversions.get(name, {}).values())

    @property
    def effective_cycles(self) -> float:
        """Cycles including memory-bandwidth stalls (>= compute cycles)."""
        slowest = max(self.bandwidth_cycles.values(), default=0.0)
        return max(float(self.cycles), slowest)

    @property
    def bandwidth_bound_level(self) -> Optional[str]:
        """The level that limits throughput, or None if compute-bound."""
        if not self.bandwidth_cycles:
            return None
        name, cycles = max(self.bandwidth_cycles.items(),
                           key=lambda item: item[1])
        return name if cycles > self.cycles else None


def _loop_is_transparent(loop: TemporalLoop) -> bool:
    return loop.bound <= 1


def _fill_events(loops_above_innermost_first: Sequence[TemporalLoop],
                 dataspace: DataSpace) -> int:
    """Number of times a level's tile of ``dataspace`` is (re)instantiated.

    ``loops_above_innermost_first`` lists every temporal loop above the
    level, starting with the innermost.  See the module docstring for the
    reuse rule being implemented.
    """
    relevant = relevant_dims(dataspace)
    events = 1
    seen_relevant = False
    for loop in loops_above_innermost_first:
        if _loop_is_transparent(loop):
            continue
        if not seen_relevant and loop.dim not in relevant:
            continue  # initial irrelevant run: perfect temporal reuse
        seen_relevant = True
        events *= loop.bound
    return events


# ---------------------------------------------------------------------------
# Node-plan records (plain classes with __slots__: attribute access in the
# analysis walk is the hottest code in the whole mapper)
# ---------------------------------------------------------------------------

#: Plan-record kind tags (cheaper to branch on than isinstance in the walk).
_KIND_STORAGE, _KIND_FANOUT, _KIND_CONVERTER = 0, 1, 2

#: Per-memo entry cap inside a SearchContext.  Contexts are cached for the
#: process lifetime, so without a bound the tile/fill/amortization memos
#: would grow monotonically across searches; past the cap a memo simply
#: resets (correctness is unaffected — entries are pure functions).
_MEMO_LIMIT = 1 << 17

#: flow-vector index per dataspace (ALL_DATASPACES order: W, I, O).
_FLOW_INDEX: Dict[DataSpace, int] = {
    ds: index for index, ds in enumerate(ALL_DATASPACES)
}


class _StoragePlan:
    __slots__ = ("name", "ds_widths", "visits", "capacity_bits",
                 "max_accumulation_depth", "outermost_for")

    def __init__(self, node: StorageLevel, layer: ConvLayer,
                 outermost: Dict[DataSpace, str]) -> None:
        self.name = node.name
        # list() preserves the frozenset's iteration order, keeping float
        # accumulation order identical to iterating node.dataspaces.
        ds_list = list(node.dataspaces)
        self.ds_widths = [
            (ds, layer.bits_per_weight if ds is DataSpace.WEIGHTS
             else layer.bits_per_activation)
            for ds in ds_list
        ]
        self.capacity_bits = node.capacity_bits
        self.max_accumulation_depth = node.max_accumulation_depth
        self.outermost_for = frozenset(
            ds for ds in ds_list if outermost[ds] == node.name)
        #: (dataspace, flow index, is outputs, is outermost) per dataspace.
        self.visits = [
            (ds, _FLOW_INDEX[ds], ds is DataSpace.OUTPUTS,
             ds in self.outermost_for)
            for ds in ds_list
        ]


class _FanoutPlan:
    __slots__ = ("name", "multicast", "reduction", "reduction_limit")

    def __init__(self, node: SpatialFanout) -> None:
        self.name = node.name
        self.multicast = node.multicast
        self.reduction = node.reduction
        self.reduction_limit = node.reduction_limit


class _ConverterPlan:
    __slots__ = ("name", "visits")

    def __init__(self, node: ConverterStage) -> None:
        self.name = node.name
        self.visits = [(ds, _FLOW_INDEX[ds]) for ds in node.dataspaces]


class SearchContext:
    """Shared per-(architecture, layer-geometry) state for mapping search.

    Built once per :meth:`Mapper.search` (or on demand for standalone
    analyses) and reused across every candidate evaluation.  Holds the
    flattened node plan plus memo tables for fill events and tile sizes;
    both are keyed purely by loop/bound signatures, so they are valid for
    any mapping of any layer sharing this context's strides and datatype
    widths.
    """

    __slots__ = ("architecture", "stride_h", "stride_w", "bits_per_weight",
                 "bits_per_activation", "storage_order", "plan",
                 "converter_names", "traffic_plan", "_fill_memo",
                 "_tile_memo", "_amort_memo", "_capacity_checks")

    def __init__(self, architecture: Architecture, layer: ConvLayer) -> None:
        self.architecture = architecture
        self.stride_h, self.stride_w = layer.strides
        self.bits_per_weight = layer.bits_per_weight
        self.bits_per_activation = layer.bits_per_activation
        self.storage_order = [s.name for s in architecture.storage_levels]
        outermost = {
            dataspace: architecture.storage_for(dataspace)[0].name
            for dataspace in ALL_DATASPACES
        }
        #: Innermost-first tagged node plan (the walk order of analyze()).
        self.plan: List[Tuple[int, object]] = []
        for node in reversed(architecture.nodes):
            if isinstance(node, ComputeLevel):
                continue
            if isinstance(node, SpatialFanout):
                self.plan.append((_KIND_FANOUT, _FanoutPlan(node)))
            elif isinstance(node, ConverterStage):
                self.plan.append((_KIND_CONVERTER, _ConverterPlan(node)))
            else:
                self.plan.append(
                    (_KIND_STORAGE, _StoragePlan(node, layer, outermost)))
        self.converter_names = [stage.name
                                for stage in architecture.converters]
        #: (name, per-dataspace widths, bandwidth) per storage level in
        #: outer-to-inner order, for the inline traffic computation.
        self.traffic_plan = [
            (level.name,
             tuple(layer.bits_per_weight if ds is DataSpace.WEIGHTS
                   else layer.bits_per_activation for ds in ALL_DATASPACES),
             level.bandwidth_bits_per_cycle)
            for level in architecture.storage_levels
        ]
        #: (loops-above signature, dataspace) -> fill events.
        self._fill_memo: Dict[Tuple, int] = {}
        #: (dataspace, cumulative bounds) -> tile elements.
        self._tile_memo: Dict[Tuple, int] = {}
        #: (fanout name, factors signature) -> per-dataspace flow divisors.
        self._amort_memo: Dict[Tuple, Tuple[float, ...]] = {}
        #: Capacity-limited storage plans, for the early rejection check.
        self._capacity_checks = [record for kind, record in self.plan
                                 if kind == _KIND_STORAGE
                                 and record.capacity_bits is not None]

    # ------------------------------------------------------------------
    # Construction cache
    # ------------------------------------------------------------------
    #: (id(architecture), strides, widths) -> (architecture, context).
    #: The architecture reference keeps the id stable for the cache's
    #: lifetime; entries are few (one per architecture geometry in use).
    _instances: Dict[Tuple, Tuple[Architecture, "SearchContext"]] = {}

    @classmethod
    def for_layer(cls, architecture: Architecture,
                  layer: ConvLayer) -> "SearchContext":
        """A (cached) context compatible with ``layer`` on ``architecture``.

        Contexts are shareable across layers with the same strides and
        datatype widths, which is what the memo tables key on.
        """
        key = (id(architecture), layer.stride_h, layer.stride_w,
               layer.bits_per_weight, layer.bits_per_activation)
        entry = cls._instances.get(key)
        if entry is None:
            if len(cls._instances) >= 128:
                # FIFO-bound the cache (long-lived sweep processes touch
                # many architecture geometries); evicting also releases
                # the keep-alive reference to the architecture.
                cls._instances.pop(next(iter(cls._instances)))
            entry = (architecture, cls(architecture, layer))
            cls._instances[key] = entry
        return entry[1]

    def compatible_with(self, architecture: Architecture,
                        layer: ConvLayer) -> bool:
        return (self.architecture is architecture
                and (self.stride_h, self.stride_w) == layer.strides
                and self.bits_per_weight == layer.bits_per_weight
                and self.bits_per_activation == layer.bits_per_activation)

    # ------------------------------------------------------------------
    # Memoized geometry
    # ------------------------------------------------------------------
    def tile_elements(self, dataspace: DataSpace,
                      bounds: Tuple[int, ...]) -> int:
        """Distinct elements of ``dataspace`` in a tile of ``bounds``.

        ``bounds`` is the cumulative per-dimension extent in ``ALL_DIMS``
        order.  Identical arithmetic to :func:`repro.workloads.dataspace.
        dataspace_tile_size`, inlined and memoized.
        """
        key = (dataspace, bounds)
        memo = self._tile_memo
        tile = memo.get(key)
        if tile is None:
            if len(memo) >= _MEMO_LIMIT:
                memo.clear()  # soft cap: contexts live process-long
            if dataspace is DataSpace.WEIGHTS:
                tile = bounds[_M] * bounds[_C] * bounds[_R] * bounds[_S]
            elif dataspace is DataSpace.OUTPUTS:
                tile = bounds[_N] * bounds[_M] * bounds[_P] * bounds[_Q]
            else:
                height = (bounds[_P] - 1) * self.stride_h + bounds[_R]
                width = (bounds[_Q] - 1) * self.stride_w + bounds[_S]
                tile = bounds[_N] * bounds[_C] * height * width
            memo[key] = tile
        return tile

    def fill_events(self, signature: Tuple[Tuple[Dim, int], ...],
                    dataspace: DataSpace) -> int:
        """Memoized :func:`_fill_events` on a non-transparent loop signature.

        ``signature`` lists the (dim, bound) pairs of every bound>1 loop
        above the level, innermost first.
        """
        key = (signature, dataspace)
        memo = self._fill_memo
        events = memo.get(key)
        if events is None:
            if len(memo) >= _MEMO_LIMIT:
                memo.clear()  # soft cap: contexts live process-long
            relevant = relevant_dims(dataspace)
            events = 1
            seen_relevant = False
            for dim, bound in signature:
                if not seen_relevant and dim not in relevant:
                    continue
                seen_relevant = True
                events *= bound
            memo[key] = events
        return events

    def amortizations(self, record: _FanoutPlan,
                      factors: TMapping[Dim, int]) -> Tuple[float, ...]:
        """Per-dataspace flow divisors for one fanout under ``factors``.

        Memoized on the factor assignment: searches revisit the same few
        spatial assignments for every temporal variant.
        """
        key = (record.name, tuple(factors.items()))
        memo = self._amort_memo
        divisors = memo.get(key)
        if divisors is None:
            if len(memo) >= _MEMO_LIMIT:
                memo.clear()  # soft cap: contexts live process-long
            divisors = tuple(
                _boundary_amortization(record, factors, dataspace)
                for dataspace in ALL_DATASPACES
            )
            memo[key] = divisors
        return divisors

    # ------------------------------------------------------------------
    # Early rejection
    # ------------------------------------------------------------------
    def capacity_violation(self, mapping: Mapping) -> Optional[str]:
        """Name of the first over-capacity storage level, or None.

        Computes exactly the per-instance occupancy the full analysis
        would, but nothing else — a cheap pre-filter that lets the mapper
        skip analysis and pricing for candidates the analyzer is certain
        to reject with :class:`CapacityError`.
        """
        if not self._capacity_checks:
            return None
        loops_by_storage = mapping.loops_by_storage()
        factors_by_fanout = mapping.factors_by_fanout()
        bounds = [1] * len(ALL_DIMS)
        dim_index = _DIM_INDEX
        for kind, record in self.plan:
            if kind == _KIND_CONVERTER:
                continue
            if kind == _KIND_FANOUT:
                for dim, factor in factors_by_fanout[record.name].items():
                    bounds[dim_index[dim]] *= factor
                continue
            for loop in loops_by_storage[record.name]:
                bounds[dim_index[loop.dim]] *= loop.bound
            if record.capacity_bits is None:
                continue
            bounds_key = tuple(bounds)
            occupancy = 0.0
            for dataspace, width in record.ds_widths:
                occupancy += self.tile_elements(dataspace, bounds_key) * width
            if occupancy > record.capacity_bits:
                return record.name
        return None


class NestAnalyzer:
    """Computes :class:`AccessCounts` for one (architecture, layer, mapping).

    The constructor validates the mapping (unless ``validate=False`` — the
    mapper's validate-once protocol, for candidates it has already checked)
    and binds a :class:`SearchContext`; :meth:`analyze` runs the
    inner-to-outer traffic walk.  ``check_capacity`` controls whether
    occupancy violations raise :class:`CapacityError` (mappers search with
    this on; diagnostic callers may disable it).
    """

    def __init__(
        self,
        architecture: Architecture,
        layer: ConvLayer,
        mapping: Mapping,
        check_capacity: bool = True,
        context: Optional[SearchContext] = None,
        validate: bool = True,
    ) -> None:
        if validate:
            mapping.validate(architecture, layer)
        if context is None:
            context = SearchContext.for_layer(architecture, layer)
        elif not context.compatible_with(architecture, layer):
            raise MappingError(
                "SearchContext was built for a different architecture or "
                "layer geometry (strides / datatype widths)"
            )
        self.architecture = architecture
        self.layer = layer
        self.mapping = mapping
        self.check_capacity = check_capacity
        self._context = context

    # ------------------------------------------------------------------
    # Main walk
    # ------------------------------------------------------------------
    def analyze(self) -> AccessCounts:
        # Far too hot for a per-call span (tens of microseconds, up to
        # ~1e5 calls under a mapper search): enabled tracing folds the
        # walk into one aggregate tick counter instead.
        tracer = current_tracer()
        if not tracer.enabled:
            return self._analyze()
        start = time.perf_counter()
        try:
            return self._analyze()
        finally:
            tracer.tick("analyzer.analyze", time.perf_counter() - start)

    def _analyze(self) -> AccessCounts:
        context = self._context
        mapping = self.mapping
        padded_macs = mapping.padded_macs()
        cycles = mapping.total_temporal_product
        total_spatial = mapping.total_spatial_product
        if padded_macs != cycles * total_spatial:
            raise MappingError(
                "internal inconsistency: padded MACs != cycles x spatial"
            )  # pragma: no cover - structural invariant

        loops_by_storage = mapping.loops_by_storage()
        factors_by_fanout = mapping.factors_by_fanout()

        # Loops-above signatures (innermost first, transparent loops
        # dropped), built in one outer-to-inner sweep.
        signatures: Dict[str, Tuple[Tuple[Dim, int], ...]] = {}
        accumulated: Tuple[Tuple[Dim, int], ...] = ()
        for name in context.storage_order:
            signatures[name] = accumulated[::-1]
            accumulated = accumulated + tuple(
                (loop.dim, loop.bound)
                for loop in loops_by_storage[name] if loop.bound > 1)

        storage_counts: Dict[str, StorageCounts] = {
            name: StorageCounts() for name in context.storage_order
        }
        conversions: Dict[str, Dict[DataSpace, float]] = {
            name: {} for name in context.converter_names
        }
        occupancy: Dict[str, float] = {}
        instances: Dict[str, int] = {}

        # Element-copies per layer currently crossing the walk position,
        # flowing downward for W/I (read demand) and upward for O (updates);
        # indexed in ALL_DATASPACES order.
        flow: List[float] = [float(padded_macs)] * len(ALL_DATASPACES)

        bounds = [1] * len(ALL_DIMS)
        dim_index = _DIM_INDEX
        spatial_inside = 1
        check_capacity = self.check_capacity
        fill_events = context.fill_events
        tile_elements = context.tile_elements

        for kind, record in context.plan:
            if kind == _KIND_FANOUT:
                factors = factors_by_fanout[record.name]
                if factors:
                    for dim, factor in factors.items():
                        bounds[dim_index[dim]] *= factor
                        spatial_inside *= factor
                    divisors = context.amortizations(record, factors)
                    for index, divisor in enumerate(divisors):
                        if divisor != 1.0:
                            flow[index] /= divisor
                continue
            if kind == _KIND_CONVERTER:
                bucket = conversions[record.name]
                for dataspace, index in record.visits:
                    bucket[dataspace] = bucket.get(dataspace, 0.0) \
                        + flow[index]
                continue

            # Storage level: its own loops are inside its tile.
            name = record.name
            for loop in loops_by_storage[name]:
                bounds[dim_index[loop.dim]] *= loop.bound
            bounds_key = tuple(bounds)
            level_instances = total_spatial // spatial_inside
            instances[name] = level_instances

            level_occupancy = 0.0
            for dataspace, width in record.ds_widths:
                level_occupancy += tile_elements(dataspace, bounds_key) \
                    * width
            occupancy[name] = level_occupancy
            if (check_capacity and record.capacity_bits is not None
                    and level_occupancy > record.capacity_bits):
                raise CapacityError(
                    f"storage {name!r}: mapping needs "
                    f"{level_occupancy:.0f} bits per instance but "
                    f"capacity is {record.capacity_bits:.0f}"
                )

            counts = storage_counts[name]
            signature = signatures[name]
            for dataspace, index, is_outputs, is_outermost in record.visits:
                if is_outputs:
                    flow[index] = self._visit_output_storage(
                        record, counts, flow[index],
                        fill_events(signature, dataspace)
                        * tile_elements(dataspace, bounds_key)
                        * level_instances,
                        is_outermost,
                    )
                elif is_outermost:
                    # Backing store: tensors are resident; nothing fills it.
                    counts.reads[dataspace] = counts.reads.get(
                        dataspace, 0.0) + flow[index]
                    flow[index] = 0.0
                else:
                    fills = (fill_events(signature, dataspace)
                             * tile_elements(dataspace, bounds_key)
                             * level_instances)
                    counts.reads[dataspace] = counts.reads.get(
                        dataspace, 0.0) + flow[index]
                    counts.writes[dataspace] = counts.writes.get(
                        dataspace, 0.0) + fills
                    flow[index] = float(fills)

        real_macs = self._grouped_real_macs()
        traffic_bits, bandwidth_cycles = self._traffic(context,
                                                       storage_counts,
                                                       instances)
        return AccessCounts(
            storage=storage_counts,
            conversions=conversions,
            padded_macs=padded_macs,
            real_macs=real_macs,
            cycles=cycles,
            occupancy_bits=occupancy,
            instances=instances,
            padding_utilization=(real_macs / padded_macs if padded_macs else 0.0),
            bandwidth_cycles=bandwidth_cycles,
            traffic_bits=traffic_bits,
        )

    # ------------------------------------------------------------------
    # Per-storage visitors
    # ------------------------------------------------------------------
    def _visit_output_storage(
        self,
        record: _StoragePlan,
        counts: StorageCounts,
        updates_in: float,
        residencies: int,
        is_outermost: bool,
    ) -> float:
        """Outputs: absorb updates by RMW, write back once per residency."""
        writebacks = float(residencies)
        if record.max_accumulation_depth is not None:
            # An accumulation-depth-limited level (analog integrator) must
            # write back at least once per `depth` absorbed updates; the
            # extra writebacks are mid-accumulation spills merged upstream.
            writebacks = max(writebacks,
                             updates_in / record.max_accumulation_depth)
        if updates_in + 1e-9 < writebacks:
            raise MappingError(
                f"storage {record.name!r}: output residencies ({writebacks}) "
                f"exceed incoming updates ({updates_in}); mapping is "
                f"structurally inconsistent"
            )  # pragma: no cover - structural invariant
        counts.writes[DataSpace.OUTPUTS] = counts.writes.get(
            DataSpace.OUTPUTS, 0.0) + updates_in
        if is_outermost:
            # Final tensor: RMW reads only for partial-sum merges; the data
            # is not read out again.
            rmw_reads = updates_in - writebacks
            counts.reads[DataSpace.OUTPUTS] = counts.reads.get(
                DataSpace.OUTPUTS, 0.0) + rmw_reads
            return 0.0
        # RMW reads (updates beyond each residency's first write) plus one
        # outgoing read per written-back element.
        counts.reads[DataSpace.OUTPUTS] = counts.reads.get(
            DataSpace.OUTPUTS, 0.0) + updates_in
        return float(writebacks)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _traffic(
        context: SearchContext,
        storage_counts: Dict[str, StorageCounts],
        instances: Dict[str, int],
    ) -> Tuple[Dict[str, float], Dict[str, float]]:
        """Inline :func:`compute_traffic` over the context's traffic plan."""
        traffic_bits: Dict[str, float] = {}
        bandwidth_cycles: Dict[str, float] = {}
        for name, widths, bandwidth in context.traffic_plan:
            counts = storage_counts[name]
            reads, writes = counts.reads, counts.writes
            bits = 0.0
            for dataspace, width in zip(ALL_DATASPACES, widths):
                bits += (reads.get(dataspace, 0.0)
                         + writes.get(dataspace, 0.0)) * width
            traffic_bits[name] = bits
            if bandwidth is not None:
                bandwidth_cycles[name] = bits / (bandwidth * instances[name])
        return traffic_bits, bandwidth_cycles

    def _grouped_real_macs(self) -> int:
        """Real MACs of the per-group problem the mapping covers."""
        layer = self.layer
        return (layer.n * (layer.m // layer.groups)
                * (layer.c // layer.groups)
                * layer.p * layer.q * layer.r * layer.s)


def _boundary_amortization(record: _FanoutPlan,
                           factors: TMapping[Dim, int],
                           dataspace: DataSpace) -> float:
    """Traffic division factor for ``dataspace`` crossing a fanout."""
    if dataspace in record.multicast:
        product = 1
        relevant = relevant_dims(dataspace)
        for dim, factor in factors.items():
            if dim not in relevant:
                product *= factor
        return float(product)
    if dataspace in record.reduction:
        product = 1
        reduction = reduction_dims(dataspace)
        for dim, factor in factors.items():
            if dim in reduction:
                product *= factor
        if record.reduction_limit is not None:
            product = min(product, record.reduction_limit)
        return float(product)
    return 1.0


def compute_traffic(
    architecture: Architecture,
    layer: ConvLayer,
    storage_counts: Dict[str, StorageCounts],
    instances: Dict[str, int],
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Per-level traffic (bits) and bandwidth-limited cycle counts.

    Factored out of the analyzer so callers that adjust counts after
    analysis (fusion's DRAM elision) can refresh the bandwidth picture.
    """
    traffic_bits: Dict[str, float] = {}
    bandwidth_cycles: Dict[str, float] = {}
    for level in architecture.storage_levels:
        counts = storage_counts[level.name]
        bits = 0.0
        for dataspace in ALL_DATASPACES:
            width = (layer.bits_per_weight
                     if dataspace is DataSpace.WEIGHTS
                     else layer.bits_per_activation)
            bits += (counts.reads.get(dataspace, 0.0)
                     + counts.writes.get(dataspace, 0.0)) * width
        traffic_bits[level.name] = bits
        if level.bandwidth_bits_per_cycle is not None:
            available = (level.bandwidth_bits_per_cycle
                         * instances[level.name])
            bandwidth_cycles[level.name] = bits / available
    return traffic_bits, bandwidth_cycles


def analyze(
    architecture: Architecture,
    layer: ConvLayer,
    mapping: Mapping,
    check_capacity: bool = True,
    context: Optional[SearchContext] = None,
) -> AccessCounts:
    """Convenience wrapper around :class:`NestAnalyzer`."""
    return NestAnalyzer(architecture, layer, mapping,
                        check_capacity=check_capacity,
                        context=context).analyze()


# ---------------------------------------------------------------------------
# Batched (candidate-axis) analysis
# ---------------------------------------------------------------------------


class BatchAccessCounts:
    """Access counts for a *block* of candidate mappings of one layer.

    Column-major twin of :class:`AccessCounts`: every storage read/write,
    conversion, and occupancy figure is a float64 array over the
    candidate axis, in exactly the entry order the scalar walk would
    have inserted — which is what lets the batched pricing in
    :meth:`repro.model.accelerator.AcceleratorModel` reproduce scalar
    energies bit for bit.  :meth:`counts_for` materializes one
    candidate's ordinary :class:`AccessCounts` (raising the same
    :class:`CapacityError` / :class:`MappingError` the scalar analyzer
    would have raised for it).
    """

    def __init__(self, mappings, layer, context, check_capacity):
        self.mappings = mappings
        self.layer = layer
        self.check_capacity = check_capacity
        self._context = context
        n = len(mappings)
        self.n = n
        #: First over-capacity level name per candidate (None = fits).
        self.capacity_level: List[Optional[str]] = [None] * n
        #: Structural-inconsistency mask (the conditions the scalar walk
        #: turns into MappingError).
        self.inconsistent = _np.zeros(n, dtype=bool)
        self.padded_macs: List[int] = []
        self.cycles: List[int] = []
        self.real_macs = 0
        #: level name -> ordered [(dataspace, float64 array)], in scalar
        #: dict-insertion order; dict iteration order is the walk order.
        self.reads_entries: Dict[str, list] = {}
        self.writes_entries: Dict[str, list] = {}
        self.conv_entries: Dict[str, list] = {
            name: [] for name in context.converter_names}
        #: (name, array / list) pairs in walk (innermost-first) order.
        self.occupancy: List[Tuple[str, Any]] = []
        self.instances: List[Tuple[str, List[int]]] = []

    def ok(self, index: int) -> bool:
        """True when the scalar path would have produced a result (no
        capacity violation, no structural inconsistency)."""
        return (self.capacity_level[index] is None
                and not bool(self.inconsistent[index]))

    def counts_for(self, index: int) -> AccessCounts:
        """Materialize candidate ``index`` as a scalar AccessCounts.

        Failure candidates delegate to the scalar analyzer so the
        exception (type, message) is exactly what a scalar caller saw.
        """
        if (not self.ok(index)
                and (self.check_capacity
                     or bool(self.inconsistent[index]))):
            return NestAnalyzer(
                self._context.architecture, self.layer,
                self.mappings[index], check_capacity=self.check_capacity,
                context=self._context, validate=False).analyze()
        storage = {name: StorageCounts()
                   for name in self._context.storage_order}
        for name, entries in self.reads_entries.items():
            reads = storage[name].reads
            for dataspace, values in entries:
                reads[dataspace] = float(values[index])
        for name, entries in self.writes_entries.items():
            writes = storage[name].writes
            for dataspace, values in entries:
                writes[dataspace] = float(values[index])
        conversions: Dict[str, Dict[DataSpace, float]] = {
            name: {} for name in self._context.converter_names}
        for name, entries in self.conv_entries.items():
            bucket = conversions[name]
            for dataspace, values in entries:
                bucket[dataspace] = float(values[index])
        occupancy = {name: float(values[index])
                     for name, values in self.occupancy}
        instances = {name: values[index]
                     for name, values in self.instances}
        traffic_bits, bandwidth_cycles = NestAnalyzer._traffic(
            self._context, storage, instances)
        padded = self.padded_macs[index]
        return AccessCounts(
            storage=storage,
            conversions=conversions,
            padded_macs=padded,
            real_macs=self.real_macs,
            cycles=self.cycles[index],
            occupancy_bits=occupancy,
            instances=instances,
            padding_utilization=(self.real_macs / padded if padded else 0.0),
            bandwidth_cycles=bandwidth_cycles,
            traffic_bits=traffic_bits,
        )


class BatchNestAnalyzer:
    """Vectorized :class:`NestAnalyzer` over a block of candidates.

    One inner-to-outer walk evaluates *every* mapping of the block: the
    per-candidate integer geometry (cumulative bounds, tile sizes, fill
    events — exact Python ints through the shared context's memos) is
    gathered once per plan record, and the floating-point pipeline (flow
    division at fanouts, occupancy, output read-modify-write, per-level
    fills) runs as numpy float64 array operations over the candidate
    axis.

    Bit-identity with the scalar walk rests on three facts: every
    integer is converted to float64 exactly once (matching the scalar
    ``float(int)``), ``x / 1.0 == x`` and ``0.0 + x == x`` hold bitwise
    for the non-negative finite values involved (so unconditional array
    ops match the scalar's skip-if-trivial branches), and arrays are
    combined in exactly the scalar accumulation order.  The golden
    master for all of this is ``tests/test_analysis_equivalence.py``.

    Candidates that the scalar analyzer would reject are *flagged*, not
    raised: ``capacity_level`` names the first over-capacity storage
    level (the scalar ``CapacityError``), ``inconsistent`` marks
    structural ``MappingError`` conditions.  Requires numpy
    (:data:`HAVE_NUMPY`); callers gate on it and fall back to scalar
    evaluation.
    """

    def __init__(
        self,
        architecture: Architecture,
        layer: ConvLayer,
        mappings: Sequence[Mapping],
        check_capacity: bool = True,
        context: Optional[SearchContext] = None,
        validate: bool = True,
    ) -> None:
        if _np is None:  # pragma: no cover - callers gate on HAVE_NUMPY
            raise MappingError("batched analysis requires numpy")
        if validate:
            for mapping in mappings:
                mapping.validate(architecture, layer)
        if context is None:
            context = SearchContext.for_layer(architecture, layer)
        elif not context.compatible_with(architecture, layer):
            raise MappingError(
                "SearchContext was built for a different architecture or "
                "layer geometry (strides / datatype widths)"
            )
        self.layer = layer
        self.mappings = list(mappings)
        self.check_capacity = check_capacity
        self._context = context

    def analyze(self) -> BatchAccessCounts:
        tracer = current_tracer()
        if not tracer.enabled:
            return self._analyze()
        start = time.perf_counter()
        try:
            return self._analyze()
        finally:
            tracer.tick("analyzer.batch", time.perf_counter() - start)

    def _analyze(self) -> BatchAccessCounts:
        np = _np
        context = self._context
        mappings = self.mappings
        n = len(mappings)
        batch = BatchAccessCounts(mappings, self.layer, context,
                                  self.check_capacity)
        layer = self.layer
        batch.real_macs = (layer.n * (layer.m // layer.groups)
                          * (layer.c // layer.groups)
                          * layer.p * layer.q * layer.r * layer.s)
        if n == 0:
            return batch

        padded = [m.padded_macs() for m in mappings]
        cycles = [m.total_temporal_product for m in mappings]
        spatial = [m.total_spatial_product for m in mappings]
        batch.padded_macs = padded
        batch.cycles = cycles
        for i in range(n):
            if padded[i] != cycles[i] * spatial[i]:  # pragma: no cover
                batch.inconsistent[i] = True

        loops = [m.loops_by_storage() for m in mappings]
        fanouts = [m.factors_by_fanout() for m in mappings]

        # Loops-above signatures per (candidate, level), innermost first
        # with transparent loops dropped — the scalar sweep, per row.
        signatures: List[Dict[str, tuple]] = []
        for i in range(n):
            accumulated: tuple = ()
            row: Dict[str, tuple] = {}
            for name in context.storage_order:
                row[name] = accumulated[::-1]
                accumulated = accumulated + tuple(
                    (loop.dim, loop.bound)
                    for loop in loops[i][name] if loop.bound > 1)
            signatures.append(row)

        # float64 copy of each candidate's padded MACs, converted once —
        # exactly the scalar ``flow = [float(padded_macs)] * 3``.
        padded_f = np.array([float(p) for p in padded], dtype=np.float64)
        flow = np.repeat(padded_f[:, None], len(ALL_DATASPACES), axis=1)

        bounds = [[1] * len(ALL_DIMS) for _ in range(n)]
        spatial_inside = [1] * n
        dim_index = _DIM_INDEX
        tile_elements = context.tile_elements
        fill_events = context.fill_events
        capacity_level = batch.capacity_level

        def fills_array(record_name, dataspace, tiles, insts):
            # fill * tile * instances as an exact Python int per
            # candidate, converted to float64 once — the scalar's single
            # ``float(fills)`` — so values beyond 2**53 round identically.
            return np.array(
                [float(fill_events(signatures[i][record_name], dataspace)
                       * tiles[i] * insts[i]) for i in range(n)],
                dtype=np.float64)

        for kind, record in context.plan:
            if kind == _KIND_FANOUT:
                divisors = None
                for i in range(n):
                    factors = fanouts[i][record.name]
                    if not factors:
                        continue
                    row_bounds = bounds[i]
                    inside = spatial_inside[i]
                    for dim, factor in factors.items():
                        row_bounds[dim_index[dim]] *= factor
                        inside *= factor
                    spatial_inside[i] = inside
                    row = context.amortizations(record, factors)
                    if divisors is None:
                        divisors = np.ones_like(flow)
                    divisors[i, :] = row
                if divisors is not None:
                    flow /= divisors  # x / 1.0 == x bitwise
                continue
            if kind == _KIND_CONVERTER:
                bucket = batch.conv_entries[record.name]
                for dataspace, index in record.visits:
                    bucket.append((dataspace, flow[:, index].copy()))
                continue

            # Storage level.
            name = record.name
            for i in range(n):
                row_bounds = bounds[i]
                for loop in loops[i][name]:
                    row_bounds[dim_index[loop.dim]] *= loop.bound
            bounds_keys = [tuple(bounds[i]) for i in range(n)]
            insts = [spatial[i] // spatial_inside[i] for i in range(n)]
            batch.instances.append((name, insts))

            occupancy = np.zeros(n, dtype=np.float64)
            tiles_by_ds: Dict[DataSpace, List[int]] = {}
            for dataspace, width in record.ds_widths:
                tiles = [tile_elements(dataspace, bounds_keys[i])
                         for i in range(n)]
                tiles_by_ds[dataspace] = tiles
                occupancy = occupancy + np.array(
                    [float(tile * width) for tile in tiles],
                    dtype=np.float64)
            batch.occupancy.append((name, occupancy))
            if record.capacity_bits is not None:
                violated = occupancy > record.capacity_bits
                if violated.any():
                    for i in np.nonzero(violated)[0]:
                        i = int(i)
                        if capacity_level[i] is None:
                            capacity_level[i] = name

            level_reads = batch.reads_entries.setdefault(name, [])
            level_writes = batch.writes_entries.setdefault(name, [])
            for dataspace, index, is_outputs, is_outermost in record.visits:
                if is_outputs:
                    updates = flow[:, index].copy()
                    writebacks = fills_array(name, dataspace,
                                             tiles_by_ds[dataspace], insts)
                    depth = record.max_accumulation_depth
                    if depth is not None:
                        writebacks = np.maximum(writebacks, updates / depth)
                    batch.inconsistent |= (updates + 1e-9) < writebacks
                    level_writes.append((dataspace, updates))
                    if is_outermost:
                        level_reads.append((dataspace, updates - writebacks))
                        flow[:, index] = 0.0
                    else:
                        level_reads.append((dataspace, updates.copy()))
                        flow[:, index] = writebacks
                elif is_outermost:
                    level_reads.append((dataspace, flow[:, index].copy()))
                    flow[:, index] = 0.0
                else:
                    fills = fills_array(name, dataspace,
                                        tiles_by_ds[dataspace], insts)
                    level_reads.append((dataspace, flow[:, index].copy()))
                    level_writes.append((dataspace, fills))
                    flow[:, index] = fills
        return batch
