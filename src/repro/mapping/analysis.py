"""Exact access-count analysis of a mapped loop nest.

Given (architecture, layer, mapping), :class:`NestAnalyzer` computes the
quantities every result in the paper is built from:

* per storage level and dataspace: reads, writes (fills / update traffic);
* per converter stage: conversion events (the paper's central cost);
* compute events, cycles, per-level occupancy, and utilization.

The method is the analytical dataflow model of Timeloop, reimplemented from
its defining equations:

**Temporal reuse (fills).**  A storage level holds one tile of each of its
dataspaces.  Walking the temporal loops *above* the level from innermost to
outermost, the tile stays resident across the initial contiguous run of
loops irrelevant to the dataspace (pure temporal reuse); the first relevant
loop changes the tile, and every loop outside that point — relevant or not —
multiplies the number of times the tile must be (re)fetched, because an
intervening relevant sweep evicts it.  Loops of bound 1 are transparent.

**Spatial behaviour (multicast / reduction).**  Crossing a fanout boundary,
traffic for a dataspace is divided by the product of spatial factors on
dimensions *irrelevant* to it — if and only if the boundary declares
multicast capability for that dataspace (a star coupler broadcasting inputs,
a DE network forking weights).  For outputs the dual operation is spatial
reduction over reduction-dimension factors (photodiodes summing wavelengths,
analog summation trees), optionally capped by ``reduction_limit``.

**Output accumulation.**  Outputs flow inward-to-outward.  At each level,
incoming partial-sum updates are absorbed by read-modify-write until the
tile's accumulation (the initial run of reduction loops above the level)
completes; each residency then writes back once.  Reduction loops above the
first output-relevant loop force mid-accumulation writebacks (spills) whose
merging happens at the parent via RMW — the accumulate-at-parent policy real
designs use, which needs no downward partial-sum path.

Every element-copy crossing a converter stage's position costs one
conversion event; multicast boundaries below a converter therefore amortize
it, which is exactly the "convert once, reuse spatially" lever the paper's
Fig. 5 explores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping as TMapping, Optional, Sequence, Tuple

from repro.arch.hierarchy import (
    Architecture,
    ComputeLevel,
    ConverterStage,
    SpatialFanout,
    StorageLevel,
)
from repro.exceptions import CapacityError, MappingError
from repro.mapping.mapping import Mapping, TemporalLoop
from repro.workloads.dataspace import (
    ALL_DATASPACES,
    DataSpace,
    dataspace_tile_size,
    reduction_dims,
    relevant_dims,
)
from repro.workloads.dims import ALL_DIMS, Dim
from repro.workloads.layer import ConvLayer


@dataclass
class StorageCounts:
    """Access counts for one storage level, split by dataspace."""

    reads: Dict[DataSpace, float] = field(default_factory=dict)
    writes: Dict[DataSpace, float] = field(default_factory=dict)

    @property
    def total_reads(self) -> float:
        return sum(self.reads.values())

    @property
    def total_writes(self) -> float:
        return sum(self.writes.values())


@dataclass
class AccessCounts:
    """Everything the evaluation layer needs to price a mapped layer."""

    #: Per storage-level access counts (element granularity).
    storage: Dict[str, StorageCounts]
    #: Per converter-stage, per dataspace conversion events.
    conversions: Dict[str, Dict[DataSpace, float]]
    #: Scheduled MAC iterations including padding (energy accounting basis).
    padded_macs: int
    #: Real MAC operations of the layer (throughput accounting basis).
    real_macs: int
    #: Total cycles (product of all temporal loop bounds).
    cycles: int
    #: Per storage-level occupancy in bits (per instance).
    occupancy_bits: Dict[str, float]
    #: Per storage-level instance counts.
    instances: Dict[str, int]
    #: Padding-induced compute utilization (real/padded, <= 1).
    padding_utilization: float
    #: Per storage-level cycles needed to move the level's traffic through
    #: its bandwidth (only levels that declare a bandwidth appear here).
    bandwidth_cycles: Dict[str, float] = field(default_factory=dict)
    #: Per storage-level total traffic in bits (reads + writes).
    traffic_bits: Dict[str, float] = field(default_factory=dict)

    def converter_events(self, name: str) -> float:
        return sum(self.conversions.get(name, {}).values())

    @property
    def effective_cycles(self) -> float:
        """Cycles including memory-bandwidth stalls (>= compute cycles)."""
        slowest = max(self.bandwidth_cycles.values(), default=0.0)
        return max(float(self.cycles), slowest)

    @property
    def bandwidth_bound_level(self) -> Optional[str]:
        """The level that limits throughput, or None if compute-bound."""
        if not self.bandwidth_cycles:
            return None
        name, cycles = max(self.bandwidth_cycles.items(),
                           key=lambda item: item[1])
        return name if cycles > self.cycles else None


def _loop_is_transparent(loop: TemporalLoop) -> bool:
    return loop.bound <= 1


def _fill_events(loops_above_innermost_first: Sequence[TemporalLoop],
                 dataspace: DataSpace) -> int:
    """Number of times a level's tile of ``dataspace`` is (re)instantiated.

    ``loops_above_innermost_first`` lists every temporal loop above the
    level, starting with the innermost.  See the module docstring for the
    reuse rule being implemented.
    """
    relevant = relevant_dims(dataspace)
    events = 1
    seen_relevant = False
    for loop in loops_above_innermost_first:
        if _loop_is_transparent(loop):
            continue
        if not seen_relevant and loop.dim not in relevant:
            continue  # initial irrelevant run: perfect temporal reuse
        seen_relevant = True
        events *= loop.bound
    return events


class NestAnalyzer:
    """Computes :class:`AccessCounts` for one (architecture, layer, mapping).

    The constructor validates the mapping and precomputes per-node context;
    :meth:`analyze` runs the inner-to-outer traffic walk.  ``check_capacity``
    controls whether occupancy violations raise :class:`CapacityError`
    (mappers search with this on; diagnostic callers may disable it).
    """

    def __init__(
        self,
        architecture: Architecture,
        layer: ConvLayer,
        mapping: Mapping,
        check_capacity: bool = True,
    ) -> None:
        mapping.validate(architecture, layer)
        self.architecture = architecture
        self.layer = layer
        self.mapping = mapping
        self.check_capacity = check_capacity
        self._loops_by_storage: Dict[str, Tuple[TemporalLoop, ...]] = {
            level.storage: level.loops for level in mapping.levels
        }
        self._factors_by_fanout: Dict[str, Dict[Dim, int]] = {
            spatial.fanout: dict(spatial.factors)
            for spatial in mapping.spatials
        }
        self._storage_order = [s.name for s in architecture.storage_levels]

    # ------------------------------------------------------------------
    # Precomputed geometry
    # ------------------------------------------------------------------
    def _loops_above(self, storage_name: str) -> List[TemporalLoop]:
        """Temporal loops outside ``storage_name``'s tile, innermost first."""
        loops: List[TemporalLoop] = []
        for name in self._storage_order:
            if name == storage_name:
                break
            loops.extend(self._loops_by_storage[name])
        return loops[::-1]

    def _cumulative_bounds(self, node_index: int) -> Dict[Dim, int]:
        """Per-dim extent of the tile held at node position ``node_index``.

        Includes the temporal loops of this and every inner storage level
        plus the spatial factors of every fanout strictly below the node.
        """
        bounds = {dim: 1 for dim in ALL_DIMS}
        for node in self.architecture.nodes[node_index:]:
            if isinstance(node, StorageLevel):
                for loop in self._loops_by_storage[node.name]:
                    bounds[loop.dim] *= loop.bound
            elif isinstance(node, SpatialFanout):
                for dim, factor in self._factors_by_fanout[node.name].items():
                    bounds[dim] *= factor
        return bounds

    def _instances_above(self, node_index: int) -> int:
        """Mapped parallel instances of the node at ``node_index``."""
        product = 1
        for node in self.architecture.nodes[:node_index]:
            if isinstance(node, SpatialFanout):
                for factor in self._factors_by_fanout[node.name].values():
                    product *= factor
        return product

    def _tile_elements(self, node_index: int, dataspace: DataSpace) -> int:
        bounds = self._cumulative_bounds(node_index)
        return dataspace_tile_size(dataspace, bounds, self.layer.strides)

    # ------------------------------------------------------------------
    # Spatial boundary amortization
    # ------------------------------------------------------------------
    def _boundary_amortization(self, fanout: SpatialFanout,
                               dataspace: DataSpace) -> float:
        """Traffic division factor for ``dataspace`` crossing ``fanout``."""
        factors = self._factors_by_fanout[fanout.name]
        if dataspace in fanout.multicast:
            product = 1
            for dim, factor in factors.items():
                if dim not in relevant_dims(dataspace):
                    product *= factor
            return float(product)
        if dataspace in fanout.reduction:
            product = 1
            for dim, factor in factors.items():
                if dim in reduction_dims(dataspace):
                    product *= factor
            if fanout.reduction_limit is not None:
                product = min(product, fanout.reduction_limit)
            return float(product)
        return 1.0

    # ------------------------------------------------------------------
    # Main walk
    # ------------------------------------------------------------------
    def analyze(self) -> AccessCounts:
        architecture = self.architecture
        padded_macs = self.mapping.padded_macs()
        cycles = self.mapping.total_temporal_product
        if padded_macs != cycles * self.mapping.total_spatial_product:
            raise MappingError(
                "internal inconsistency: padded MACs != cycles x spatial"
            )  # pragma: no cover - structural invariant

        storage_counts: Dict[str, StorageCounts] = {
            name: StorageCounts() for name in self._storage_order
        }
        conversions: Dict[str, Dict[DataSpace, float]] = {
            stage.name: {} for stage in architecture.converters
        }
        occupancy: Dict[str, float] = {}
        instances: Dict[str, int] = {}

        outermost = {
            dataspace: self.architecture.storage_for(dataspace)[0].name
            for dataspace in ALL_DATASPACES
        }

        # Element-copies per layer currently crossing the walk position,
        # flowing downward for W/I (read demand) and upward for O (updates).
        flow: Dict[DataSpace, float] = {
            ds: float(padded_macs) for ds in ALL_DATASPACES
        }

        for node_index in range(len(architecture.nodes) - 1, -1, -1):
            node = architecture.nodes[node_index]
            if isinstance(node, ComputeLevel):
                continue
            if isinstance(node, SpatialFanout):
                for dataspace in ALL_DATASPACES:
                    flow[dataspace] /= self._boundary_amortization(
                        node, dataspace)
                continue
            if isinstance(node, ConverterStage):
                for dataspace in node.dataspaces:
                    bucket = conversions[node.name]
                    bucket[dataspace] = bucket.get(dataspace, 0.0) \
                        + flow[dataspace]
                continue

            assert isinstance(node, StorageLevel)
            counts = storage_counts[node.name]
            level_instances = self._instances_above(node_index)
            instances[node.name] = level_instances
            occupancy[node.name] = self._occupancy_bits(node_index, node)
            if (self.check_capacity and node.capacity_bits is not None
                    and occupancy[node.name] > node.capacity_bits):
                raise CapacityError(
                    f"storage {node.name!r}: mapping needs "
                    f"{occupancy[node.name]:.0f} bits per instance but "
                    f"capacity is {node.capacity_bits:.0f}"
                )
            for dataspace in node.dataspaces:
                if dataspace is DataSpace.OUTPUTS:
                    flow[dataspace] = self._visit_output_storage(
                        node, node_index, counts, flow[dataspace],
                        is_outermost=(node.name == outermost[dataspace]),
                    )
                else:
                    flow[dataspace] = self._visit_read_storage(
                        node, node_index, counts, flow[dataspace],
                        dataspace,
                        is_outermost=(node.name == outermost[dataspace]),
                    )

        real_macs = self._grouped_real_macs()
        traffic_bits, bandwidth_cycles = compute_traffic(
            self.architecture, self.layer, storage_counts, instances)
        return AccessCounts(
            storage=storage_counts,
            conversions=conversions,
            padded_macs=padded_macs,
            real_macs=real_macs,
            cycles=cycles,
            occupancy_bits=occupancy,
            instances=instances,
            padding_utilization=(real_macs / padded_macs if padded_macs else 0.0),
            bandwidth_cycles=bandwidth_cycles,
            traffic_bits=traffic_bits,
        )

    # ------------------------------------------------------------------
    # Per-storage visitors
    # ------------------------------------------------------------------
    def _visit_read_storage(
        self,
        node: StorageLevel,
        node_index: int,
        counts: StorageCounts,
        incoming_demand: float,
        dataspace: DataSpace,
        is_outermost: bool,
    ) -> float:
        """Weights/inputs: serve downstream demand, fetch fills from above."""
        counts.reads[dataspace] = counts.reads.get(dataspace, 0.0) \
            + incoming_demand
        if is_outermost:
            # Backing store: tensors are resident; nothing fills it.
            return 0.0
        fills = (
            _fill_events(self._loops_above(node.name), dataspace)
            * self._tile_elements(node_index, dataspace)
            * self._instances_above(node_index)
        )
        counts.writes[dataspace] = counts.writes.get(dataspace, 0.0) + fills
        return float(fills)

    def _visit_output_storage(
        self,
        node: StorageLevel,
        node_index: int,
        counts: StorageCounts,
        updates_in: float,
        is_outermost: bool,
    ) -> float:
        """Outputs: absorb updates by RMW, write back once per residency."""
        writebacks = float(
            _fill_events(self._loops_above(node.name), DataSpace.OUTPUTS)
            * self._tile_elements(node_index, DataSpace.OUTPUTS)
            * self._instances_above(node_index)
        )
        if node.max_accumulation_depth is not None:
            # An accumulation-depth-limited level (analog integrator) must
            # write back at least once per `depth` absorbed updates; the
            # extra writebacks are mid-accumulation spills merged upstream.
            writebacks = max(writebacks,
                             updates_in / node.max_accumulation_depth)
        if updates_in + 1e-9 < writebacks:
            raise MappingError(
                f"storage {node.name!r}: output residencies ({writebacks}) "
                f"exceed incoming updates ({updates_in}); mapping is "
                f"structurally inconsistent"
            )  # pragma: no cover - structural invariant
        counts.writes[DataSpace.OUTPUTS] = counts.writes.get(
            DataSpace.OUTPUTS, 0.0) + updates_in
        if is_outermost:
            # Final tensor: RMW reads only for partial-sum merges; the data
            # is not read out again.
            rmw_reads = updates_in - writebacks
            counts.reads[DataSpace.OUTPUTS] = counts.reads.get(
                DataSpace.OUTPUTS, 0.0) + rmw_reads
            return 0.0
        # RMW reads (updates beyond each residency's first write) plus one
        # outgoing read per written-back element.
        counts.reads[DataSpace.OUTPUTS] = counts.reads.get(
            DataSpace.OUTPUTS, 0.0) + updates_in
        return float(writebacks)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _occupancy_bits(self, node_index: int, node: StorageLevel) -> float:
        bits = 0.0
        for dataspace in node.dataspaces:
            width = (self.layer.bits_per_weight
                     if dataspace is DataSpace.WEIGHTS
                     else self.layer.bits_per_activation)
            bits += self._tile_elements(node_index, dataspace) * width
        return bits

    def _grouped_real_macs(self) -> int:
        """Real MACs of the per-group problem the mapping covers."""
        layer = self.layer
        return (layer.n * (layer.m // layer.groups)
                * (layer.c // layer.groups)
                * layer.p * layer.q * layer.r * layer.s)


def compute_traffic(
    architecture: Architecture,
    layer: ConvLayer,
    storage_counts: Dict[str, StorageCounts],
    instances: Dict[str, int],
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Per-level traffic (bits) and bandwidth-limited cycle counts.

    Factored out of the analyzer so callers that adjust counts after
    analysis (fusion's DRAM elision) can refresh the bandwidth picture.
    """
    traffic_bits: Dict[str, float] = {}
    bandwidth_cycles: Dict[str, float] = {}
    for level in architecture.storage_levels:
        counts = storage_counts[level.name]
        bits = 0.0
        for dataspace in ALL_DATASPACES:
            width = (layer.bits_per_weight
                     if dataspace is DataSpace.WEIGHTS
                     else layer.bits_per_activation)
            bits += (counts.reads.get(dataspace, 0.0)
                     + counts.writes.get(dataspace, 0.0)) * width
        traffic_bits[level.name] = bits
        if level.bandwidth_bits_per_cycle is not None:
            available = (level.bandwidth_bits_per_cycle
                         * instances[level.name])
            bandwidth_cycles[level.name] = bits / available
    return traffic_bits, bandwidth_cycles


def analyze(
    architecture: Architecture,
    layer: ConvLayer,
    mapping: Mapping,
    check_capacity: bool = True,
) -> AccessCounts:
    """Convenience wrapper around :class:`NestAnalyzer`."""
    return NestAnalyzer(architecture, layer, mapping,
                        check_capacity=check_capacity).analyze()
