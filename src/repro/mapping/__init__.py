"""The mapping engine (the Timeloop-equivalent layer).

A *mapping* schedules a convolutional layer onto an architecture: it splits
each of the seven loop dimensions into per-storage-level temporal factors
(with an ordering — the loop permutation) and per-fanout spatial factors.
The :class:`~repro.mapping.analysis.NestAnalyzer` then computes, exactly and
in closed form, how many times every buffer is read and written, how many
elements cross every data converter, and how many cycles the layer takes —
the quantities the paper's energy/throughput results are built from.

The :class:`~repro.mapping.mapper.Mapper` searches the mapping space
(factorizations x permutations x spatial assignments) for minimum-energy or
minimum-EDP mappings under user constraints, which is the "rapid design
space exploration" workflow the paper demonstrates.
"""

from repro.mapping.analysis import (
    AccessCounts,
    NestAnalyzer,
    SearchContext,
    analyze,
)
from repro.mapping.constraints import MappingConstraints
from repro.mapping.factorization import (
    ceil_div,
    divisors,
    factor_splits,
    padded_factor_splits,
    tile_candidates,
)
from repro.mapping.mapper import Mapper, MapperResult
from repro.mapping.mapping import (
    FanoutMapping,
    LevelMapping,
    Mapping,
    TemporalLoop,
)

__all__ = [
    "AccessCounts",
    "FanoutMapping",
    "LevelMapping",
    "Mapper",
    "MapperResult",
    "Mapping",
    "MappingConstraints",
    "NestAnalyzer",
    "SearchContext",
    "TemporalLoop",
    "analyze",
    "ceil_div",
    "divisors",
    "factor_splits",
    "padded_factor_splits",
    "tile_candidates",
]
