"""Mapping representation: how a layer's loops are scheduled onto hardware.

A :class:`Mapping` assigns:

* to every **storage level** of the architecture, an ordered list of
  temporal loops (:class:`LevelMapping`) — the level's tiling factors and
  their permutation, listed *outermost first*;
* to every **fanout boundary**, a dict of spatial factors
  (:class:`FanoutMapping`) — how many hardware instances each problem
  dimension spreads across.

The product of all factors of a dimension (temporal and spatial) is the
mapping's *padded* size for that dimension and must be at least the layer's
size; any excess is idle padding that shows up as utilization < 1.

Validation is strict and early: a mapping that refers to unknown levels,
violates a fanout's allowed dimensions or size, or under-covers the layer
raises :class:`~repro.exceptions.MappingError` with a precise message, so
mapper bugs surface at construction rather than as silently wrong energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping as TMapping, Optional, Tuple

from repro.arch.hierarchy import Architecture, SpatialFanout, StorageLevel
from repro.exceptions import MappingError
from repro.workloads.dims import ALL_DIMS, Dim
from repro.workloads.layer import ConvLayer


@dataclass(frozen=True)
class TemporalLoop:
    """One temporal loop: iterate ``dim`` ``bound`` times."""

    dim: Dim
    bound: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "dim", Dim(self.dim))
        if self.bound < 1:
            raise MappingError(
                f"temporal loop over {self.dim} must have bound >= 1, got "
                f"{self.bound}"
            )

    def __repr__(self) -> str:
        return f"for {self.dim.value} in 0..{self.bound}"


@dataclass(frozen=True)
class LevelMapping:
    """Temporal loops attached to one storage level, outermost first."""

    storage: str
    loops: Tuple[TemporalLoop, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "loops", tuple(self.loops))

    @property
    def factor_product(self) -> int:
        product = 1
        for loop in self.loops:
            product *= loop.bound
        return product

    def factors(self) -> Dict[Dim, int]:
        """Combined factor per dimension at this level."""
        result: Dict[Dim, int] = {}
        for loop in self.loops:
            result[loop.dim] = result.get(loop.dim, 1) * loop.bound
        return result


@dataclass(frozen=True)
class FanoutMapping:
    """Spatial factors mapped onto one fanout boundary."""

    fanout: str
    factors: TMapping[Dim, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        normalized = {}
        for dim, factor in self.factors.items():
            factor = int(factor)
            if factor < 1:
                raise MappingError(
                    f"fanout {self.fanout!r}: spatial factor for {dim} must "
                    f"be >= 1, got {factor}"
                )
            if factor > 1:
                normalized[Dim(dim)] = factor
        object.__setattr__(self, "factors", normalized)

    @property
    def factor_product(self) -> int:
        product = 1
        for factor in self.factors.values():
            product *= factor
        return product


@dataclass(frozen=True)
class Mapping:
    """A complete schedule of one layer onto one architecture."""

    levels: Tuple[LevelMapping, ...]
    spatials: Tuple[FanoutMapping, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "levels", tuple(self.levels))
        object.__setattr__(self, "spatials", tuple(self.spatials))

    def __getstate__(self):
        # The validation memo holds an Architecture reference; shipping it
        # (or the derived index dicts) with every pickled mapping would
        # bloat worker payloads.
        state = dict(self.__dict__)
        for cache_attr in ("_validated_cache", "_loops_index_cache",
                           "_factors_index_cache"):
            state.pop(cache_attr, None)
        return state

    def loops_by_storage(self) -> Dict[str, Tuple[TemporalLoop, ...]]:
        """Storage name -> temporal loops, cached (mappings are immutable).

        The analysis walk and the mapper's capacity pre-filter both index
        levels by name for every candidate; treat the result as read-only.
        """
        cached = getattr(self, "_loops_index_cache", None)
        if cached is None:
            cached = {level.storage: level.loops for level in self.levels}
            object.__setattr__(self, "_loops_index_cache", cached)
        return cached

    def factors_by_fanout(self) -> Dict[str, TMapping[Dim, int]]:
        """Fanout name -> spatial factors, cached; treat as read-only."""
        cached = getattr(self, "_factors_index_cache", None)
        if cached is None:
            cached = {spatial.fanout: spatial.factors
                      for spatial in self.spatials}
            object.__setattr__(self, "_factors_index_cache", cached)
        return cached

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def level_for(self, storage: str) -> LevelMapping:
        for level in self.levels:
            if level.storage == storage:
                return level
        raise MappingError(f"mapping has no level entry for {storage!r}")

    def spatial_for(self, fanout: str) -> FanoutMapping:
        for spatial in self.spatials:
            if spatial.fanout == fanout:
                return spatial
        raise MappingError(f"mapping has no spatial entry for {fanout!r}")

    def _padded_totals(self) -> Tuple[int, ...]:
        """Per-dimension padded totals in ``ALL_DIMS`` order, cached.

        Mappings are immutable, and the search hot path asks for these
        aggregates several times per candidate (analysis, validation,
        tie-breaking), so they are computed once per instance.
        """
        cached = getattr(self, "_padded_cache", None)
        if cached is None:
            totals = {dim: 1 for dim in ALL_DIMS}
            for level in self.levels:
                for loop in level.loops:
                    totals[loop.dim] *= loop.bound
            for spatial in self.spatials:
                for dim, factor in spatial.factors.items():
                    totals[dim] *= factor
            cached = tuple(totals[dim] for dim in ALL_DIMS)
            object.__setattr__(self, "_padded_cache", cached)
        return cached

    def padded_dims(self) -> Dict[Dim, int]:
        """Per-dimension product of every temporal and spatial factor."""
        return dict(zip(ALL_DIMS, self._padded_totals()))

    @property
    def total_temporal_product(self) -> int:
        """Total cycles implied by the temporal loops (one step per cycle)."""
        cached = getattr(self, "_temporal_cache", None)
        if cached is None:
            cached = 1
            for level in self.levels:
                cached *= level.factor_product
            object.__setattr__(self, "_temporal_cache", cached)
        return cached

    @property
    def total_spatial_product(self) -> int:
        cached = getattr(self, "_spatial_cache", None)
        if cached is None:
            cached = 1
            for spatial in self.spatials:
                cached *= spatial.factor_product
            object.__setattr__(self, "_spatial_cache", cached)
        return cached

    def padded_macs(self) -> int:
        product = 1
        for total in self._padded_totals():
            product *= total
        return product

    def canonical_key(self) -> Tuple:
        """Hashable identity of the *schedule* this mapping expresses.

        Two mappings with the same key produce identical analysis results:
        the key records, per level, the ordered non-unit loops (bound-1
        loops are transparent to the analyzer) and, per fanout, the sorted
        spatial factors (factor order within a fanout has no semantic
        meaning).  The mapper uses this to deduplicate candidates.
        """
        return (
            tuple(
                (level.storage,
                 tuple((loop.dim, loop.bound) for loop in level.loops
                       if loop.bound > 1))
                for level in self.levels
            ),
            tuple(
                (spatial.fanout,
                 tuple(sorted((dim.value, factor)
                              for dim, factor in spatial.factors.items())))
                for spatial in self.spatials
            ),
        )

    def structure_key(self) -> Tuple:
        """Hashable identity of the mapping's exact *structure*.

        Unlike :meth:`canonical_key` nothing is normalized away: bound-1
        loops, loop order, and fanout-factor insertion order all
        distinguish — two mappings share a structure key iff they are
        field-for-field identical (the discrimination ``repr`` gives,
        built without rendering strings).  Reference-mapping builders use
        this to deduplicate the variants they enumerate.
        """
        return (
            tuple(
                (level.storage,
                 tuple((loop.dim, loop.bound) for loop in level.loops))
                for level in self.levels
            ),
            tuple(
                (spatial.fanout, tuple(spatial.factors.items()))
                for spatial in self.spatials
            ),
        )

    def utilization_vs(self, layer: ConvLayer) -> float:
        """Fraction of scheduled iterations that are real work (<= 1)."""
        padded = self.padded_macs()
        real = _grouped_macs_reference(layer)
        return real / padded if padded else 0.0

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, architecture: Architecture, layer: ConvLayer) -> None:
        """Raise :class:`MappingError` unless this mapping is well-formed.

        Checks structural agreement with the architecture (one level entry
        per storage level, one spatial entry per fanout, in order), fanout
        size and allowed-dimension limits, storage temporal-dimension
        restrictions, and full coverage of the layer's (per-group) loop
        bounds.

        The outcome is memoized per (architecture, problem size): mappings
        are immutable, so re-validating the same mapping against the same
        target — which search loops and repeated analyses do constantly —
        is a no-op after the first success.
        """
        required = _grouped_dims_reference(layer)
        memo_key = (architecture, tuple(required.values()))
        cached = getattr(self, "_validated_cache", None)
        if cached is not None \
                and cached[0] is memo_key[0] and cached[1] == memo_key[1]:
            return
        storage_names = [s.name for s in architecture.storage_levels]
        mapped_names = [level.storage for level in self.levels]
        if mapped_names != storage_names:
            raise MappingError(
                f"mapping levels {mapped_names} do not match architecture "
                f"storage levels {storage_names}"
            )
        fanout_names = [f.name for f in architecture.fanouts]
        mapped_fanouts = [spatial.fanout for spatial in self.spatials]
        if mapped_fanouts != fanout_names:
            raise MappingError(
                f"mapping spatials {mapped_fanouts} do not match architecture "
                f"fanouts {fanout_names}"
            )
        for spatial, fanout in zip(self.spatials, architecture.fanouts):
            self._validate_spatial(spatial, fanout)
        for level_mapping in self.levels:
            storage = architecture.node_named(level_mapping.storage)
            assert isinstance(storage, StorageLevel)
            self._validate_temporal(level_mapping, storage)
        self._validate_coverage(layer)
        object.__setattr__(self, "_validated_cache", memo_key)

    @staticmethod
    def _validate_spatial(spatial: FanoutMapping, fanout: SpatialFanout) -> None:
        illegal = set(spatial.factors) - set(fanout.allowed_dims)
        if illegal:
            raise MappingError(
                f"fanout {fanout.name!r}: dimensions "
                f"{sorted(d.value for d in illegal)} may not map here "
                f"(allowed: {sorted(d.value for d in fanout.allowed_dims)})"
            )
        if spatial.factor_product > fanout.size:
            raise MappingError(
                f"fanout {fanout.name!r}: mapped {spatial.factor_product} "
                f"instances but hardware provides {fanout.size}"
            )

    @staticmethod
    def _validate_temporal(level_mapping: LevelMapping,
                           storage: StorageLevel) -> None:
        if storage.allowed_temporal_dims is None:
            return
        for loop in level_mapping.loops:
            if loop.bound > 1 and loop.dim not in storage.allowed_temporal_dims:
                raise MappingError(
                    f"storage {storage.name!r}: temporal iteration over "
                    f"{loop.dim.value} not allowed (allowed: "
                    f"{sorted(d.value for d in storage.allowed_temporal_dims)})"
                )

    def _validate_coverage(self, layer: ConvLayer) -> None:
        padded = self.padded_dims()
        required = _grouped_dims_reference(layer)
        for dim, size in required.items():
            if padded[dim] < size:
                raise MappingError(
                    f"mapping covers only {padded[dim]} of dimension "
                    f"{dim.value} (layer needs {size})"
                )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Timeloop-style loop-nest rendering, outermost level first."""
        lines: List[str] = []
        indent = 0
        spatial_by_name = {s.fanout: s for s in self.spatials}
        for level in self.levels:
            lines.append("  " * indent + f"[{level.storage}]")
            for loop in level.loops:
                lines.append("  " * (indent + 1)
                             + f"for {loop.dim.value} in [0:{loop.bound})")
            indent += 1
        for name, spatial in spatial_by_name.items():
            if spatial.factors:
                rendered = ", ".join(
                    f"{dim.value}:{factor}"
                    for dim, factor in sorted(spatial.factors.items())
                )
                lines.append("  " * indent + f"spatial[{name}] {rendered}")
        return "\n".join(lines)


def problem_dims(layer: ConvLayer) -> Dict[Dim, int]:
    """Loop bounds a mapping must cover: the per-group problem.

    Grouped convolutions are mapped per group (the standard approach for
    architectures without native group support); the evaluation layer scales
    results by the group count.
    """
    return {
        Dim.N: layer.n,
        Dim.M: layer.m // layer.groups,
        Dim.C: layer.c // layer.groups,
        Dim.P: layer.p,
        Dim.Q: layer.q,
        Dim.R: layer.r,
        Dim.S: layer.s,
    }


def problem_macs(layer: ConvLayer) -> int:
    """MACs of the per-group problem a mapping covers."""
    product = 1
    for size in problem_dims(layer).values():
        product *= size
    return product


# Backwards-compatible internal aliases.
_grouped_dims_reference = problem_dims
_grouped_macs_reference = problem_macs
