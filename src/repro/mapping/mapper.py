"""Mapping search: find low-cost schedules for a layer on an architecture.

The mapper enumerates candidate mappings — spatial factor assignments per
fanout, temporal tilings per storage level, and loop-permutation templates —
evaluates each through a caller-supplied cost function (typically total
energy or energy-delay product priced by the model layer), and returns the
best valid mapping.

The search is deliberately structured like practical Timeloop usage:

* **Spatial candidates** are built inner-fanout-first with greedy "fill the
  hardware" preference plus alternates, since inner photonic fanouts are
  rigidly wired (window sites, wavelengths) while outer ones (clusters) are
  flexible.
* **Temporal candidates** split each dimension's leftover between the
  innermost constrained levels (analog accumulators take reduction loops up
  to their budget), a middle buffer tile, and the backing store.
* **Permutation templates** order each level's loops to protect one chosen
  dataspace from refetch (weights / inputs / outputs), the orderings that
  matter in practice.

Candidates beyond ``max_evaluations`` are sampled with a seeded RNG so runs
are reproducible.  Invalid candidates (capacity violations, constraint
breaches) are skipped and counted.

Hot-path structure
------------------

Candidate generation is *spec-based*: the generators produce lightweight
(spatial assignment, per-level factor dicts, permutation template) tuples,
deduplicated by canonical mapping key, and only the sampled winners are
materialized into :class:`Mapping` objects — constructing tens of
thousands of ``TemporalLoop`` dataclasses for candidates that sampling
throws away used to dominate search time.  Evaluation shares one
:class:`~repro.mapping.analysis.SearchContext` across every candidate
(validate-once, memoized geometry) and prunes capacity-doomed candidates
before pricing; the ``deduplicated`` / ``pruned_early`` counters on
:class:`MapperResult` surface both effects.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.arch.hierarchy import Architecture, SpatialFanout, StorageLevel
from repro.exceptions import CapacityError, MappingError
from repro.mapping.analysis import SearchContext
from repro.mapping.constraints import MappingConstraints
from repro.mapping.factorization import ceil_div, tile_candidates
from repro.mapping.mapping import (
    FanoutMapping,
    LevelMapping,
    Mapping,
    TemporalLoop,
    problem_dims,
)
from repro.workloads.dims import ALL_DIMS, Dim
from repro.workloads.layer import ConvLayer

#: Cost function: maps a structurally valid mapping to a scalar cost.
#: May raise MappingError/CapacityError to reject a candidate.  Cost
#: functions that set a truthy ``supports_context`` attribute are called
#: as ``cost_fn(mapping, context=...)`` with the search's shared
#: :class:`SearchContext`; they promise to price with capacity checking
#: on, which also lets the mapper early-reject over-capacity candidates.
CostFn = Callable[[Mapping], float]

#: Candidate spec: (spatial FanoutMappings, per-level (storage, factors)
#: pairs, permutation template).  Materialized into a Mapping only after
#: dedup + sampling.
_CandidateSpec = Tuple[List[FanoutMapping],
                       Tuple[Tuple[str, Dict[Dim, int]], ...],
                       Tuple[Dim, ...]]


@dataclass
class MapperResult:
    """Outcome of a mapping search."""

    mapping: Mapping
    cost: float
    evaluated: int
    valid: int
    #: Generated candidates dropped because an identical schedule (same
    #: canonical mapping key) was already in the pool.
    deduplicated: int = 0
    #: Candidates skipped before pricing by the cheap occupancy bound.
    pruned_early: int = 0

    @property
    def validity_rate(self) -> float:
        return self.valid / self.evaluated if self.evaluated else 0.0


#: Loop-permutation templates: for each, the listed dims go OUTERMOST at the
#: level (in order), protecting the named dataspace's tiles below from
#: refetch by keeping its irrelevant dims innermost.
_PERMUTATION_TEMPLATES: Dict[str, Tuple[Dim, ...]] = {
    # Weight-irrelevant dims (N, P, Q) innermost: weights below fetched once.
    "protect_weights": (Dim.C, Dim.M, Dim.R, Dim.S, Dim.Q, Dim.P, Dim.N),
    # Input-irrelevant dim (M) innermost: inputs below fetched once.
    "protect_inputs": (Dim.R, Dim.S, Dim.C, Dim.Q, Dim.P, Dim.N, Dim.M),
    # Reduction dims innermost: outputs fully accumulate before eviction.
    "protect_outputs": (Dim.N, Dim.M, Dim.P, Dim.Q, Dim.C, Dim.R, Dim.S),
}

#: Template tuple in enumeration order (indexable by candidate index).
_TEMPLATE_LIST: Tuple[Tuple[Dim, ...], ...] = tuple(
    _PERMUTATION_TEMPLATES.values())


class Mapper:
    """Searches the mapping space of one architecture."""

    def __init__(
        self,
        architecture: Architecture,
        cost_fn: CostFn,
        constraints: Optional[MappingConstraints] = None,
        spatial_combo_limit: int = 64,
        temporal_combo_limit: int = 48,
    ) -> None:
        self.architecture = architecture
        self.cost_fn = cost_fn
        self.constraints = constraints or MappingConstraints()
        self.spatial_combo_limit = spatial_combo_limit
        self.temporal_combo_limit = temporal_combo_limit

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def search(
        self,
        layer: ConvLayer,
        max_evaluations: int = 2000,
        seed: int = 0,
        extra_candidates: Sequence[Mapping] = (),
    ) -> MapperResult:
        """Return the lowest-cost valid mapping found for ``layer``.

        ``extra_candidates`` seeds the search with known-good mappings
        (e.g. a system's reference mapping); they are always evaluated.
        Generated candidates that duplicate an extra candidate's schedule
        (or each other's) are dropped, so no schedule is ever priced twice.
        """
        with obs.span("mapper.search", layer=layer.name) as search_span:
            rng = random.Random(seed)
            seeded = list(extra_candidates)
            seen = {mapping.canonical_key() for mapping in seeded}
            budget = max(0, max_evaluations - len(seeded))
            specs, deduplicated = self._generate_specs(layer, rng, seen,
                                                       budget)
            candidates = seeded + [_materialize(spec) for spec in specs]

            context = SearchContext.for_layer(self.architecture, layer)
            # The validate-once protocol only extends to cost functions
            # that opt in: they receive the shared context, evaluate
            # without re-validating, and check capacity — which also
            # licenses the cheap occupancy pre-filter below.
            supports_context = bool(getattr(self.cost_fn,
                                            "supports_context", False))

            best_mapping: Optional[Mapping] = None
            best_cost = float("inf")
            best_key = (float("inf"), float("inf"))
            evaluated = 0
            valid = 0
            pruned_early = 0
            batch_fn = (getattr(self.cost_fn, "batch", None)
                        if supports_context else None)
            if batch_fn is not None:
                # Vectorized block path: validate / constrain / pre-filter
                # each candidate exactly as the scalar loop would, then
                # price the survivors in one batched analyzer pass.
                # Candidates the batch flags (the ones scalar pricing
                # would reject) come back as None.  Winner selection is
                # the same first-minimal scan in candidate order, so the
                # result — mapping, cost, and every counter — is
                # bit-identical to the scalar path.
                survivors: List[Mapping] = []
                for mapping in candidates:
                    evaluated += 1
                    try:
                        mapping.validate(self.architecture, layer)
                        self.constraints.check(mapping)
                    except (MappingError, CapacityError):
                        continue
                    if context.capacity_violation(mapping) is not None:
                        pruned_early += 1
                        continue
                    survivors.append(mapping)
                for mapping, cost in zip(survivors,
                                         batch_fn(survivors, context)):
                    if cost is None:
                        continue
                    valid += 1
                    key = (cost, mapping.total_temporal_product)
                    if key < best_key:
                        best_key = key
                        best_cost = cost
                        best_mapping = mapping
                candidates = ()
            for mapping in candidates:
                evaluated += 1
                try:
                    mapping.validate(self.architecture, layer)
                    self.constraints.check(mapping)
                    if supports_context:
                        if context.capacity_violation(mapping) is not None:
                            pruned_early += 1
                            continue
                        cost = self.cost_fn(mapping, context=context)
                    else:
                        cost = self.cost_fn(mapping)
                except (MappingError, CapacityError):
                    continue
                valid += 1
                # Tie-break equal-cost mappings by latency (fewer temporal
                # steps = more spatial parallelism).
                key = (cost, mapping.total_temporal_product)
                if key < best_key:
                    best_key = key
                    best_cost = cost
                    best_mapping = mapping
            search_span.set("evaluated", evaluated)
            search_span.set("valid", valid)
            search_span.set("deduplicated", deduplicated)
            search_span.set("pruned_early", pruned_early)
            if best_mapping is None:
                raise MappingError(
                    f"mapper found no valid mapping for layer "
                    f"{layer.name!r} after {evaluated} candidates; check "
                    f"constraints and buffer capacities"
                )
        return MapperResult(mapping=best_mapping, cost=best_cost,
                            evaluated=evaluated, valid=valid,
                            deduplicated=deduplicated,
                            pruned_early=pruned_early)

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def _generate_specs(
        self,
        layer: ConvLayer,
        rng: random.Random,
        seen: set,
        budget: int,
    ) -> Tuple[List[_CandidateSpec], int]:
        """Up to ``budget`` deduplicated candidate specs (+ duplicate count).

        Enumerates only the candidate *structure* — spatial assignments,
        holder-loop combos, buffer tilings — then composes per-level factor
        dicts and canonical keys lazily:

        * pool comfortably within budget: every candidate is composed,
          deduplicated by canonical key, and (if still over budget)
          sampled;
        * pool much larger than budget: candidate indices are drawn
          uniformly with the seeded RNG and duplicate schedules are
          rejected and redrawn, so composition work scales with the
          evaluation budget instead of the pool size.

        Either way the returned specs contain no duplicate schedules and
        none that match a key already in ``seen`` (which is extended in
        place).
        """
        if budget <= 0:
            return [], 0
        dims = problem_dims(layer)
        groups: List[Tuple[List[FanoutMapping], _TemporalStructure]] = []
        group_starts: List[int] = []
        total = 0
        for spatials, remaining in self._spatial_candidates(dims, rng):
            structure = self._temporal_structure(layer, remaining, rng)
            if structure.count == 0:
                continue
            groups.append((spatials, structure))
            group_starts.append(total)
            total += structure.count

        specs: List[_CandidateSpec] = []
        duplicates = 0
        if total <= 2 * budget:
            # Small pool: compose everything, dedup, sample the overflow.
            for spatials, structure in groups:
                spatial_key = _spatial_key(spatials)
                for index in range(structure.count):
                    spec, key = self._compose(spatials, spatial_key,
                                              structure, index)
                    if key in seen:
                        duplicates += 1
                        continue
                    seen.add(key)
                    specs.append(spec)
            if len(specs) > budget:
                specs = rng.sample(specs, budget)
            return specs, duplicates

        # Large pool: draw indices, compose only the winners.  Duplicate
        # schedules are rejected and redrawn (budget <= total/2, so the
        # rejection loop terminates quickly).
        spatial_keys: Dict[int, Tuple] = {}
        drawn = set()
        while len(specs) < budget and len(drawn) < total:
            index = rng.randrange(total)
            if index in drawn:
                continue
            drawn.add(index)
            group_index = bisect.bisect_right(group_starts, index) - 1
            spatials, structure = groups[group_index]
            spatial_key = spatial_keys.get(group_index)
            if spatial_key is None:
                spatial_key = _spatial_key(spatials)
                spatial_keys[group_index] = spatial_key
            spec, key = self._compose(spatials, spatial_key, structure,
                                      index - group_starts[group_index])
            if key in seen:
                duplicates += 1
                continue
            seen.add(key)
            specs.append(spec)
        return specs, duplicates

    def _compose(
        self,
        spatials: List[FanoutMapping],
        spatial_key: Tuple,
        structure: "_TemporalStructure",
        index: int,
    ) -> Tuple[_CandidateSpec, Tuple]:
        """Compose candidate ``index`` of one (spatial, temporal) group."""
        level_factors, template = structure.compose(index)
        levels_key = tuple(
            (name, tuple((dim, factors[dim]) for dim in template
                         if factors.get(dim, 1) > 1))
            for name, factors in level_factors
        )
        return ((spatials, level_factors, template),
                (levels_key, spatial_key))

    def _spatial_candidates(
        self, dims: Dict[Dim, int], rng: random.Random
    ) -> List[Tuple[List[FanoutMapping], Dict[Dim, int]]]:
        """Candidate spatial assignments, inner fanouts chosen first."""
        fanouts = self.architecture.fanouts
        # Work inner-to-outer; remember arch order for the final mapping.
        combos: List[Tuple[Dict[str, Dict[Dim, int]], Dict[Dim, int]]] = [
            ({}, dict(dims))
        ]
        for fanout in reversed(fanouts):
            grown: List[Tuple[Dict[str, Dict[Dim, int]], Dict[Dim, int]]] = []
            for assignment, remaining in combos:
                for factors in self._fanout_options(fanout, remaining):
                    new_remaining = dict(remaining)
                    for dim, factor in factors.items():
                        new_remaining[dim] = ceil_div(new_remaining[dim],
                                                      factor)
                    new_assignment = dict(assignment)
                    new_assignment[fanout.name] = factors
                    grown.append((new_assignment, new_remaining))
            if len(grown) > self.spatial_combo_limit:
                grown = rng.sample(grown, self.spatial_combo_limit)
            combos = grown
        results = []
        for assignment, remaining in combos:
            spatials = [
                FanoutMapping(fanout=f.name,
                              factors=assignment.get(f.name, {}))
                for f in fanouts
            ]
            results.append((spatials, remaining))
        return results

    def _fanout_options(
        self, fanout: SpatialFanout, remaining: Dict[Dim, int]
    ) -> List[Dict[Dim, int]]:
        """A few factor assignments for one fanout: greedy fill + alternates."""
        constraint = self.constraints.fanout(fanout.name)
        size_cap = fanout.size
        if constraint.max_instances is not None:
            size_cap = min(size_cap, constraint.max_instances)
        usable_dims = [
            dim for dim in ALL_DIMS
            if dim in fanout.allowed_dims
            and dim not in constraint.forbidden_dims
            and remaining.get(dim, 1) > 1
        ]
        if not usable_dims or size_cap == 1:
            return [{}]

        def cap_for(dim: Dim) -> int:
            cap = constraint.max_factor.get(dim, size_cap)
            return min(cap, size_cap)

        options: List[Dict[Dim, int]] = [{}]
        # Greedy fills in a few dimension priority orders.
        orders = [usable_dims, usable_dims[::-1]]
        for order in orders:
            factors: Dict[Dim, int] = {}
            budget = size_cap
            for dim in order:
                if budget <= 1:
                    break
                factor = min(remaining[dim], cap_for(dim), budget)
                factor = _largest_fitting_factor(remaining[dim], factor)
                if factor > 1:
                    factors[dim] = factor
                    budget //= factor
            if factors and factors not in options:
                options.append(factors)
        # Single-dimension fills.
        for dim in usable_dims:
            factor = _largest_fitting_factor(
                remaining[dim], min(remaining[dim], cap_for(dim)))
            candidate = {dim: factor} if factor > 1 else {}
            if candidate not in options:
                options.append(candidate)
        return options

    def _temporal_structure(
        self, layer: ConvLayer, leftover: Dict[Dim, int], rng: random.Random
    ) -> "_TemporalStructure":
        """Enumerate the temporal-candidate structure for one leftover state.

        Produces holder-loop combos and buffer tilings but defers composing
        per-level factor dicts to :meth:`_TemporalStructure.compose`, so a
        budget-limited search only pays for the candidates it draws.
        """
        storages = self.architecture.storage_levels
        if len(storages) == 1:
            return _TemporalStructure.single(storages[0].name, dict(leftover))

        # Constrained inner levels (e.g. analog integrators) first.
        inner_assignments, leftover = self._assign_constrained_inner(
            storages, leftover)

        outer = storages[0]          # backing store (DRAM)
        middle = storages[1:]        # buffers between DRAM and the inner
        middle = [s for s in middle if s.name not in inner_assignments]

        # Stationary holders: middle buffers storing a strict subset of the
        # dataspaces (an analog weight bank, an output accumulator SRAM)
        # get loops over their dataspaces' relevant dims up to capacity —
        # the weight/output-stationary schedules real designs use.
        general = [s for s in middle if len(s.dataspaces) == 3]
        holders = [s for s in middle if len(s.dataspaces) < 3]
        target_buffers = general if general else middle[:1]
        holder_option_sets = [
            (holder, self._stationary_options(holder, layer, leftover))
            for holder in holders
        ]

        holder_combos: List[Dict[str, Dict[Dim, int]]] = [{}]
        for holder, options in holder_option_sets:
            grown = []
            for combo in holder_combos:
                for option in options:
                    extended = dict(combo)
                    extended[holder.name] = option
                    grown.append(extended)
            holder_combos = grown

        entries = []
        for holder_assignment in holder_combos:
            remaining = dict(leftover)
            for factors in holder_assignment.values():
                for dim, factor in factors.items():
                    remaining[dim] = ceil_div(remaining[dim], factor)
            tilings = self._buffer_tilings(target_buffers, remaining, rng)
            entries.append((holder_assignment, remaining, tilings))
        return _TemporalStructure(
            storage_names=[storage.name for storage in storages],
            outer_name=outer.name,
            target_name=(target_buffers[-1].name if target_buffers
                         else None),
            inner_assignments=inner_assignments,
            entries=entries,
        )

    def _stationary_options(
        self,
        storage: StorageLevel,
        layer: ConvLayer,
        leftover: Dict[Dim, int],
    ) -> List[Dict[Dim, int]]:
        """Loop options for a single-dataspace holder buffer.

        Offers "pass-through" (no loops) and "fill to capacity" over the
        dims relevant to the stored dataspaces, so the search can discover
        stationary dataflows without enumerating every tile size.
        """
        from repro.workloads.dataspace import relevant_dims as rdims

        usable: List[Dim] = []
        for dataspace in storage.dataspaces:
            for dim in rdims(dataspace):
                if dim not in usable and leftover.get(dim, 1) > 1:
                    usable.append(dim)
        options: List[Dict[Dim, int]] = [{}]
        if not usable:
            return options
        element_bits = max(layer.bits_per_weight, layer.bits_per_activation)
        budget = (int(storage.capacity_bits // element_bits)
                  if storage.capacity_bits is not None else 10 ** 9)
        if budget <= 1:
            return options
        fill: Dict[Dim, int] = {}
        for dim in usable:
            if budget <= 1:
                break
            factor = _largest_fitting_factor(
                leftover[dim], min(leftover[dim], budget))
            if factor > 1:
                fill[dim] = factor
                budget //= factor
        if fill:
            options.append(fill)
            if len(fill) > 1:
                # A half-filled variant leaves room for other dataspaces'
                # working sets at shared levels below.
                first_dim = next(iter(fill))
                half = dict(fill)
                half[first_dim] = max(1, fill[first_dim] // 2)
                options.append({d: f for d, f in half.items() if f > 1})
        return options

    def _assign_constrained_inner(
        self, storages: Sequence[StorageLevel], leftover: Dict[Dim, int]
    ) -> Tuple[Dict[str, Dict[Dim, int]], Dict[Dim, int]]:
        """Give dim-restricted inner levels their loops up to budget."""
        assignments: Dict[str, Dict[Dim, int]] = {}
        leftover = dict(leftover)
        for storage in reversed(storages[1:]):
            if storage.allowed_temporal_dims is None:
                continue
            constraint = self.constraints.storage(storage.name)
            budget = constraint.max_temporal_product
            if budget is None:
                budget = 10 ** 9
            factors: Dict[Dim, int] = {}
            for dim in sorted(storage.allowed_temporal_dims,
                              key=lambda d: -leftover.get(d, 1)):
                if budget <= 1:
                    break
                factor = _largest_fitting_factor(
                    leftover.get(dim, 1), min(leftover.get(dim, 1), budget))
                if factor > 1:
                    factors[dim] = factor
                    leftover[dim] = ceil_div(leftover[dim], factor)
                    budget //= factor
            assignments[storage.name] = factors
        return assignments, leftover

    def _buffer_tilings(
        self,
        buffers: Sequence[StorageLevel],
        leftover: Dict[Dim, int],
        rng: random.Random,
    ) -> List[Dict[Dim, int]]:
        """Candidate tile factors for the innermost general-purpose buffer.

        Buffers between DRAM and the target pass through untiled, so only
        the target's factor dict is returned per candidate.  Per-dimension
        candidates are the full leftover (maximum reuse), 1 (stream
        through), and a couple of intermediate divisor-ish tiles;
        combinations are capped and sampled.
        """
        if not buffers:
            return [{}]
        per_dim_options: Dict[Dim, List[int]] = {}
        for dim in ALL_DIMS:
            size = leftover.get(dim, 1)
            if size <= 1:
                per_dim_options[dim] = [1]
                continue
            options = {1, size}
            ladder = [c for c in tile_candidates(size) if 1 < c < size]
            if ladder:
                options.add(ladder[len(ladder) // 2])
                options.add(ladder[-1])
            per_dim_options[dim] = sorted(options)
        dims_order = list(ALL_DIMS)
        all_choices = [per_dim_options[dim] for dim in dims_order]
        total = 1
        for choices in all_choices:
            total *= len(choices)
        product_iter: Iterable[Tuple[int, ...]] = itertools.product(
            *all_choices)
        if total > self.temporal_combo_limit:
            chosen = set()
            # Always include the two extreme tilings.
            chosen.add(tuple(options[-1] for options in all_choices))
            chosen.add(tuple(options[0] for options in all_choices))
            while len(chosen) < self.temporal_combo_limit:
                chosen.add(tuple(rng.choice(options)
                                 for options in all_choices))
            product_iter = sorted(chosen)
        return [
            {dim: factor
             for dim, factor in zip(dims_order, combo) if factor > 1}
            for combo in product_iter
        ]


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

class _TemporalStructure:
    """Temporal candidates for one leftover-dims state, composed on demand.

    ``entries`` holds (holder assignment, remaining dims after holders,
    buffer tilings) triples; flat candidate index order is holder combo,
    then tiling, then permutation template — matching the historical
    enumeration order.
    """

    __slots__ = ("storage_names", "outer_name", "target_name",
                 "inner_assignments", "entries", "entry_starts", "count",
                 "single_leftover")

    def __init__(self, storage_names, outer_name, target_name,
                 inner_assignments, entries):
        self.storage_names = storage_names
        self.outer_name = outer_name
        self.target_name = target_name
        self.inner_assignments = inner_assignments
        self.entries = entries
        self.single_leftover = None
        self.entry_starts = []
        count = 0
        templates = len(_TEMPLATE_LIST)
        for _, _, tilings in entries:
            self.entry_starts.append(count)
            count += len(tilings) * templates
        self.count = count

    @classmethod
    def single(cls, storage_name: str,
               leftover: Dict[Dim, int]) -> "_TemporalStructure":
        """The degenerate single-storage-level architecture."""
        structure = cls([storage_name], storage_name, None, {}, [])
        structure.single_leftover = leftover
        structure.count = 1
        return structure

    def compose(
        self, index: int
    ) -> Tuple[Tuple[Tuple[str, Dict[Dim, int]], ...], Tuple[Dim, ...]]:
        """(per-level (storage, factors), template) for one flat index."""
        if self.single_leftover is not None:
            return (((self.storage_names[0], self.single_leftover),),
                    _PERMUTATION_TEMPLATES["protect_outputs"])
        entry_index = bisect.bisect_right(self.entry_starts, index) - 1
        holder_assignment, remaining, tilings = self.entries[entry_index]
        offset = index - self.entry_starts[entry_index]
        tiling_index, template_index = divmod(offset, len(_TEMPLATE_LIST))
        target_factors = tilings[tiling_index]
        dram_factors = {
            dim: -(-remaining[dim] // target_factors.get(dim, 1))
            for dim in ALL_DIMS
        }
        inner_assignments = self.inner_assignments
        level_factors = []
        for name in self.storage_names:
            if name == self.outer_name:
                factors = dram_factors
            elif name in inner_assignments:
                factors = inner_assignments[name]
            elif name in holder_assignment:
                factors = holder_assignment[name]
            elif name == self.target_name:
                factors = target_factors
            else:
                factors = {}
            level_factors.append((name, factors))
        return tuple(level_factors), _TEMPLATE_LIST[template_index]


def _spatial_key(spatials: Sequence[FanoutMapping]) -> Tuple:
    """The spatial half of a candidate's canonical key."""
    return tuple(
        (spatial.fanout,
         tuple(sorted((dim.value, factor)
                      for dim, factor in spatial.factors.items())))
        for spatial in spatials
    )


def _materialize(spec: _CandidateSpec) -> Mapping:
    """Build the actual :class:`Mapping` for a surviving candidate spec."""
    spatials, level_factors, template = spec
    return Mapping(
        levels=tuple(
            LevelMapping(storage=name, loops=_ordered_loops(factors,
                                                            template))
            for name, factors in level_factors
        ),
        spatials=tuple(spatials),
    )


@lru_cache(maxsize=65536)
def _largest_fitting_factor(size: int, cap: int) -> int:
    """Best spatial/tiling factor <= cap for a dimension of ``size``.

    Chooses the factor that minimizes the remaining iteration count
    ``ceil(size / f)`` (i.e. maximizes throughput), breaking ties by the
    smallest padded total ``f * ceil(size / f)`` (i.e. least idle work).
    A full-cap split therefore wins unless a smaller factor covers the
    dimension in the same number of steps with less padding.

    Instead of scanning every factor in ``1..cap`` (O(cap)), only the
    smallest factor of each distinct-step block is examined: for a fixed
    step count ``s = ceil(size / f)``, the padded total ``s * f`` grows
    with ``f``, so the block's smallest factor dominates the rest.  There
    are O(sqrt(size)) such blocks, walked with the standard ceil-division
    block step.  Cached: the mapper asks for the same few (size, cap)
    pairs thousands of times per search.
    """
    if cap <= 1:
        return 1
    if size <= cap:
        return size
    best_factor = 1
    best_key = (size, size)  # (steps, padded total) for f = 1
    factor = 1
    while factor <= cap:
        steps = -(-size // factor)
        key = (steps, steps * factor)
        if key < best_key:
            best_key = key
            best_factor = factor
        if steps <= 1:
            break
        # Largest factor with the same ceil(size / f), then step past it.
        factor = (size - 1) // (steps - 1) + 1
    return best_factor


def _ordered_loops(factors: Dict[Dim, int],
                   outer_order: Tuple[Dim, ...]) -> Tuple[TemporalLoop, ...]:
    """Loops for ``factors`` ordered by a permutation template."""
    loops = []
    for dim in outer_order:
        bound = factors.get(dim, 1)
        if bound > 1:
            loops.append(TemporalLoop(dim=dim, bound=bound))
    return tuple(loops)
