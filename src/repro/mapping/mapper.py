"""Mapping search: find low-cost schedules for a layer on an architecture.

The mapper enumerates candidate mappings — spatial factor assignments per
fanout, temporal tilings per storage level, and loop-permutation templates —
evaluates each through a caller-supplied cost function (typically total
energy or energy-delay product priced by the model layer), and returns the
best valid mapping.

The search is deliberately structured like practical Timeloop usage:

* **Spatial candidates** are built inner-fanout-first with greedy "fill the
  hardware" preference plus alternates, since inner photonic fanouts are
  rigidly wired (window sites, wavelengths) while outer ones (clusters) are
  flexible.
* **Temporal candidates** split each dimension's leftover between the
  innermost constrained levels (analog accumulators take reduction loops up
  to their budget), a middle buffer tile, and the backing store.
* **Permutation templates** order each level's loops to protect one chosen
  dataspace from refetch (weights / inputs / outputs), the orderings that
  matter in practice.

Candidates beyond ``max_evaluations`` are sampled with a seeded RNG so runs
are reproducible.  Invalid candidates (capacity violations, constraint
breaches) are skipped and counted.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arch.hierarchy import Architecture, SpatialFanout, StorageLevel
from repro.exceptions import CapacityError, MappingError
from repro.mapping.constraints import MappingConstraints
from repro.mapping.factorization import ceil_div, tile_candidates
from repro.mapping.mapping import (
    FanoutMapping,
    LevelMapping,
    Mapping,
    TemporalLoop,
    problem_dims,
)
from repro.workloads.dataspace import DataSpace, relevant_dims
from repro.workloads.dims import ALL_DIMS, Dim
from repro.workloads.layer import ConvLayer

#: Cost function: maps a structurally valid mapping to a scalar cost.
#: May raise MappingError/CapacityError to reject a candidate.
CostFn = Callable[[Mapping], float]


@dataclass
class MapperResult:
    """Outcome of a mapping search."""

    mapping: Mapping
    cost: float
    evaluated: int
    valid: int

    @property
    def validity_rate(self) -> float:
        return self.valid / self.evaluated if self.evaluated else 0.0


#: Loop-permutation templates: for each, the listed dims go OUTERMOST at the
#: level (in order), protecting the named dataspace's tiles below from
#: refetch by keeping its irrelevant dims innermost.
_PERMUTATION_TEMPLATES: Dict[str, Tuple[Dim, ...]] = {
    # Weight-irrelevant dims (N, P, Q) innermost: weights below fetched once.
    "protect_weights": (Dim.C, Dim.M, Dim.R, Dim.S, Dim.Q, Dim.P, Dim.N),
    # Input-irrelevant dim (M) innermost: inputs below fetched once.
    "protect_inputs": (Dim.R, Dim.S, Dim.C, Dim.Q, Dim.P, Dim.N, Dim.M),
    # Reduction dims innermost: outputs fully accumulate before eviction.
    "protect_outputs": (Dim.N, Dim.M, Dim.P, Dim.Q, Dim.C, Dim.R, Dim.S),
}


class Mapper:
    """Searches the mapping space of one architecture."""

    def __init__(
        self,
        architecture: Architecture,
        cost_fn: CostFn,
        constraints: Optional[MappingConstraints] = None,
        spatial_combo_limit: int = 64,
        temporal_combo_limit: int = 48,
    ) -> None:
        self.architecture = architecture
        self.cost_fn = cost_fn
        self.constraints = constraints or MappingConstraints()
        self.spatial_combo_limit = spatial_combo_limit
        self.temporal_combo_limit = temporal_combo_limit

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def search(
        self,
        layer: ConvLayer,
        max_evaluations: int = 2000,
        seed: int = 0,
        extra_candidates: Sequence[Mapping] = (),
    ) -> MapperResult:
        """Return the lowest-cost valid mapping found for ``layer``.

        ``extra_candidates`` seeds the search with known-good mappings
        (e.g. a system's reference mapping); they are always evaluated.
        """
        rng = random.Random(seed)
        candidates = list(extra_candidates)
        candidates.extend(self._generate(layer, rng))
        if len(candidates) > max_evaluations:
            seeded = list(extra_candidates)
            generated = candidates[len(extra_candidates):]
            sample_size = max(0, max_evaluations - len(seeded))
            candidates = seeded + rng.sample(generated, sample_size)

        best_mapping: Optional[Mapping] = None
        best_cost = float("inf")
        best_key = (float("inf"), float("inf"))
        evaluated = 0
        valid = 0
        for mapping in candidates:
            evaluated += 1
            try:
                mapping.validate(self.architecture, layer)
                self.constraints.check(mapping)
                cost = self.cost_fn(mapping)
            except (MappingError, CapacityError):
                continue
            valid += 1
            # Tie-break equal-cost mappings by latency (fewer temporal
            # steps = more spatial parallelism).
            key = (cost, mapping.total_temporal_product)
            if key < best_key:
                best_key = key
                best_cost = cost
                best_mapping = mapping
        if best_mapping is None:
            raise MappingError(
                f"mapper found no valid mapping for layer {layer.name!r} "
                f"after {evaluated} candidates; check constraints and "
                f"buffer capacities"
            )
        return MapperResult(mapping=best_mapping, cost=best_cost,
                            evaluated=evaluated, valid=valid)

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def _generate(self, layer: ConvLayer,
                  rng: random.Random) -> List[Mapping]:
        dims = problem_dims(layer)
        mappings: List[Mapping] = []
        for spatials, remaining in self._spatial_candidates(dims, rng):
            for levels in self._temporal_candidates(layer, remaining, rng):
                mappings.append(Mapping(levels=tuple(levels),
                                        spatials=tuple(spatials)))
        return mappings

    def _spatial_candidates(
        self, dims: Dict[Dim, int], rng: random.Random
    ) -> List[Tuple[List[FanoutMapping], Dict[Dim, int]]]:
        """Candidate spatial assignments, inner fanouts chosen first."""
        fanouts = self.architecture.fanouts
        # Work inner-to-outer; remember arch order for the final mapping.
        combos: List[Tuple[Dict[str, Dict[Dim, int]], Dict[Dim, int]]] = [
            ({}, dict(dims))
        ]
        for fanout in reversed(fanouts):
            grown: List[Tuple[Dict[str, Dict[Dim, int]], Dict[Dim, int]]] = []
            for assignment, remaining in combos:
                for factors in self._fanout_options(fanout, remaining):
                    new_remaining = dict(remaining)
                    for dim, factor in factors.items():
                        new_remaining[dim] = ceil_div(new_remaining[dim],
                                                      factor)
                    new_assignment = dict(assignment)
                    new_assignment[fanout.name] = factors
                    grown.append((new_assignment, new_remaining))
            if len(grown) > self.spatial_combo_limit:
                grown = rng.sample(grown, self.spatial_combo_limit)
            combos = grown
        results = []
        for assignment, remaining in combos:
            spatials = [
                FanoutMapping(fanout=f.name,
                              factors=assignment.get(f.name, {}))
                for f in fanouts
            ]
            results.append((spatials, remaining))
        return results

    def _fanout_options(
        self, fanout: SpatialFanout, remaining: Dict[Dim, int]
    ) -> List[Dict[Dim, int]]:
        """A few factor assignments for one fanout: greedy fill + alternates."""
        constraint = self.constraints.fanout(fanout.name)
        size_cap = fanout.size
        if constraint.max_instances is not None:
            size_cap = min(size_cap, constraint.max_instances)
        usable_dims = [
            dim for dim in ALL_DIMS
            if dim in fanout.allowed_dims
            and dim not in constraint.forbidden_dims
            and remaining.get(dim, 1) > 1
        ]
        if not usable_dims or size_cap == 1:
            return [{}]

        def cap_for(dim: Dim) -> int:
            cap = constraint.max_factor.get(dim, size_cap)
            return min(cap, size_cap)

        options: List[Dict[Dim, int]] = [{}]
        # Greedy fills in a few dimension priority orders.
        orders = [usable_dims, usable_dims[::-1]]
        for order in orders:
            factors: Dict[Dim, int] = {}
            budget = size_cap
            for dim in order:
                if budget <= 1:
                    break
                factor = min(remaining[dim], cap_for(dim), budget)
                factor = _largest_fitting_factor(remaining[dim], factor)
                if factor > 1:
                    factors[dim] = factor
                    budget //= factor
            if factors and factors not in options:
                options.append(factors)
        # Single-dimension fills.
        for dim in usable_dims:
            factor = _largest_fitting_factor(
                remaining[dim], min(remaining[dim], cap_for(dim)))
            candidate = {dim: factor} if factor > 1 else {}
            if candidate not in options:
                options.append(candidate)
        return options

    def _temporal_candidates(
        self, layer: ConvLayer, leftover: Dict[Dim, int], rng: random.Random
    ) -> List[List[LevelMapping]]:
        """Candidate temporal splits of ``leftover`` across storage levels."""
        storages = self.architecture.storage_levels
        if len(storages) == 1:
            loops = _ordered_loops(leftover,
                                   _PERMUTATION_TEMPLATES["protect_outputs"])
            return [[LevelMapping(storage=storages[0].name, loops=loops)]]

        # Constrained inner levels (e.g. analog integrators) first.
        inner_assignments, leftover = self._assign_constrained_inner(
            storages, leftover)

        outer = storages[0]          # backing store (DRAM)
        middle = storages[1:]        # buffers between DRAM and the inner
        middle = [s for s in middle if s.name not in inner_assignments]

        # Stationary holders: middle buffers storing a strict subset of the
        # dataspaces (an analog weight bank, an output accumulator SRAM)
        # get loops over their dataspaces' relevant dims up to capacity —
        # the weight/output-stationary schedules real designs use.
        general = [s for s in middle if len(s.dataspaces) == 3]
        holders = [s for s in middle if len(s.dataspaces) < 3]
        target_buffers = general if general else middle[:1]
        holder_option_sets = [
            (holder, self._stationary_options(holder, layer, leftover))
            for holder in holders
        ]

        candidates: List[List[LevelMapping]] = []
        holder_combos = [{}]
        for holder, options in holder_option_sets:
            grown = []
            for combo in holder_combos:
                for option in options:
                    extended = dict(combo)
                    extended[holder.name] = option
                    grown.append(extended)
            holder_combos = grown

        for holder_assignment in holder_combos:
            remaining = dict(leftover)
            for factors in holder_assignment.values():
                for dim, factor in factors.items():
                    remaining[dim] = ceil_div(remaining[dim], factor)
            for buffer_factors in self._buffer_tilings(
                    target_buffers, remaining, rng):
                dram_factors = {
                    dim: ceil_div(remaining[dim],
                                  _product_over(buffer_factors, dim))
                    for dim in ALL_DIMS
                }
                for template in _PERMUTATION_TEMPLATES.values():
                    levels: List[LevelMapping] = []
                    for storage in storages:
                        if storage.name == outer.name:
                            factors = dram_factors
                        elif storage.name in inner_assignments:
                            factors = inner_assignments[storage.name]
                        elif storage.name in holder_assignment:
                            factors = holder_assignment[storage.name]
                        else:
                            factors = buffer_factors.get(storage.name, {})
                        loops = _ordered_loops(factors, template)
                        levels.append(LevelMapping(storage=storage.name,
                                                   loops=loops))
                    candidates.append(levels)
        return candidates

    def _stationary_options(
        self,
        storage: StorageLevel,
        layer: ConvLayer,
        leftover: Dict[Dim, int],
    ) -> List[Dict[Dim, int]]:
        """Loop options for a single-dataspace holder buffer.

        Offers "pass-through" (no loops) and "fill to capacity" over the
        dims relevant to the stored dataspaces, so the search can discover
        stationary dataflows without enumerating every tile size.
        """
        from repro.workloads.dataspace import relevant_dims as rdims

        usable: List[Dim] = []
        for dataspace in storage.dataspaces:
            for dim in rdims(dataspace):
                if dim not in usable and leftover.get(dim, 1) > 1:
                    usable.append(dim)
        options: List[Dict[Dim, int]] = [{}]
        if not usable:
            return options
        element_bits = max(layer.bits_per_weight, layer.bits_per_activation)
        budget = (int(storage.capacity_bits // element_bits)
                  if storage.capacity_bits is not None else 10 ** 9)
        if budget <= 1:
            return options
        fill: Dict[Dim, int] = {}
        for dim in usable:
            if budget <= 1:
                break
            factor = _largest_fitting_factor(
                leftover[dim], min(leftover[dim], budget))
            if factor > 1:
                fill[dim] = factor
                budget //= factor
        if fill:
            options.append(fill)
            if len(fill) > 1:
                # A half-filled variant leaves room for other dataspaces'
                # working sets at shared levels below.
                first_dim = next(iter(fill))
                half = dict(fill)
                half[first_dim] = max(1, fill[first_dim] // 2)
                options.append({d: f for d, f in half.items() if f > 1})
        return options

    def _assign_constrained_inner(
        self, storages: Sequence[StorageLevel], leftover: Dict[Dim, int]
    ) -> Tuple[Dict[str, Dict[Dim, int]], Dict[Dim, int]]:
        """Give dim-restricted inner levels their loops up to budget."""
        assignments: Dict[str, Dict[Dim, int]] = {}
        leftover = dict(leftover)
        for storage in reversed(storages[1:]):
            if storage.allowed_temporal_dims is None:
                continue
            constraint = self.constraints.storage(storage.name)
            budget = constraint.max_temporal_product
            if budget is None:
                budget = 10 ** 9
            factors: Dict[Dim, int] = {}
            for dim in sorted(storage.allowed_temporal_dims,
                              key=lambda d: -leftover.get(d, 1)):
                if budget <= 1:
                    break
                factor = _largest_fitting_factor(
                    leftover.get(dim, 1), min(leftover.get(dim, 1), budget))
                if factor > 1:
                    factors[dim] = factor
                    leftover[dim] = ceil_div(leftover[dim], factor)
                    budget //= factor
            assignments[storage.name] = factors
        return assignments, leftover

    def _buffer_tilings(
        self,
        buffers: Sequence[StorageLevel],
        leftover: Dict[Dim, int],
        rng: random.Random,
    ) -> List[Dict[str, Dict[Dim, int]]]:
        """Candidate tile factors for the middle buffer levels.

        For the common single-buffer case, per-dimension candidates are the
        full leftover (maximum reuse), 1 (stream through), and a couple of
        intermediate divisor-ish tiles; combinations are capped and sampled.
        """
        if not buffers:
            return [{}]
        target = buffers[-1]  # innermost general-purpose buffer gets tiles
        per_dim_options: Dict[Dim, List[int]] = {}
        for dim in ALL_DIMS:
            size = leftover.get(dim, 1)
            if size <= 1:
                per_dim_options[dim] = [1]
                continue
            options = {1, size}
            ladder = [c for c in tile_candidates(size) if 1 < c < size]
            if ladder:
                options.add(ladder[len(ladder) // 2])
                options.add(ladder[-1])
            per_dim_options[dim] = sorted(options)
        combos = []
        dims_order = list(ALL_DIMS)
        all_choices = [per_dim_options[dim] for dim in dims_order]
        total = 1
        for choices in all_choices:
            total *= len(choices)
        product_iter: Iterable[Tuple[int, ...]] = itertools.product(
            *all_choices)
        if total > self.temporal_combo_limit:
            chosen = set()
            # Always include the two extreme tilings.
            chosen.add(tuple(options[-1] for options in all_choices))
            chosen.add(tuple(options[0] for options in all_choices))
            while len(chosen) < self.temporal_combo_limit:
                chosen.add(tuple(rng.choice(options)
                                 for options in all_choices))
            product_iter = sorted(chosen)
        for combo in product_iter:
            factors = {
                dim: factor
                for dim, factor in zip(dims_order, combo) if factor > 1
            }
            result: Dict[str, Dict[Dim, int]] = {target.name: factors}
            # Any buffers between DRAM and the target pass through untiled.
            for other in buffers[:-1]:
                result[other.name] = {}
            combos.append(result)
        return combos


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _largest_fitting_factor(size: int, cap: int) -> int:
    """Best spatial/tiling factor <= cap for a dimension of ``size``.

    Chooses the factor that minimizes the remaining iteration count
    ``ceil(size / f)`` (i.e. maximizes throughput), breaking ties by the
    smallest padded total ``f * ceil(size / f)`` (i.e. least idle work).
    A full-cap split therefore wins unless a smaller factor covers the
    dimension in the same number of steps with less padding.
    """
    if cap <= 1:
        return 1
    if size <= cap:
        return size
    best_factor = 1
    best_key = (size, size)  # (steps, padded total) for f = 1
    for factor in range(1, cap + 1):
        steps = -(-size // factor)
        key = (steps, steps * factor)
        if key < best_key:
            best_key = key
            best_factor = factor
    return best_factor


def _ordered_loops(factors: Dict[Dim, int],
                   outer_order: Tuple[Dim, ...]) -> Tuple[TemporalLoop, ...]:
    """Loops for ``factors`` ordered by a permutation template."""
    loops = []
    for dim in outer_order:
        bound = factors.get(dim, 1)
        if bound > 1:
            loops.append(TemporalLoop(dim=dim, bound=bound))
    return tuple(loops)


def _product_over(buffer_factors: Dict[str, Dict[Dim, int]],
                  dim: Dim) -> int:
    product = 1
    for factors in buffer_factors.values():
        product *= factors.get(dim, 1)
    return product
