"""Integer factorization utilities for mapping search.

The mapper splits each problem dimension into factors assigned to levels.
Perfect factorizations only exist for composite dimension sizes, so — like
Timeloop's "imperfect factorization" follow-ons — we also generate *padded*
splits, where the product may exceed the dimension (the hardware runs idle
iterations and utilization drops below 1).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterator, List, Sequence, Tuple


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for positive operands."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


@lru_cache(maxsize=4096)
def divisors(n: int) -> Tuple[int, ...]:
    """All positive divisors of ``n`` in ascending order.

    >>> divisors(12)
    (1, 2, 3, 4, 6, 12)
    """
    if n < 1:
        raise ValueError(f"divisors defined for positive integers, got {n}")
    small: List[int] = []
    large: List[int] = []
    limit = int(math.isqrt(n))
    for candidate in range(1, limit + 1):
        if n % candidate == 0:
            small.append(candidate)
            if candidate != n // candidate:
                large.append(n // candidate)
    return tuple(small + large[::-1])


@lru_cache(maxsize=4096)
def largest_divisor_at_most(n: int, cap: int) -> int:
    """Largest exact divisor of ``n`` that is <= ``cap`` (no padding).

    The "exact split" counterpart of the mapper's padded
    ``_largest_fitting_factor``: systems use it where idle iterations are
    unacceptable (e.g. analog accumulation depths must divide evenly).

    >>> largest_divisor_at_most(12, 5)
    4
    >>> largest_divisor_at_most(7, 5)
    1
    """
    best = 1
    for candidate in divisors(n):
        if candidate > cap:
            break
        best = candidate
    return best


def factor_splits(n: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """All ordered ``parts``-tuples of positive integers whose product is n.

    >>> sorted(factor_splits(4, 2))
    [(1, 4), (2, 2), (4, 1)]
    """
    if n < 1 or parts < 1:
        raise ValueError("factor_splits needs positive n and parts")
    if parts == 1:
        yield (n,)
        return
    for first in divisors(n):
        for rest in factor_splits(n // first, parts - 1):
            yield (first,) + rest


def padded_factor_splits(
    n: int, parts: int, max_padding_ratio: float = 2.0
) -> Iterator[Tuple[int, ...]]:
    """Ordered splits whose product is >= n (padding) within a waste bound.

    Generates every exact split of every padded total ``n'`` with
    ``n <= n' <= n * max_padding_ratio``, deduplicated.  Padding lets the
    mapper handle prime or awkward dimension sizes at the cost of idle
    hardware iterations.
    """
    if max_padding_ratio < 1.0:
        raise ValueError("max_padding_ratio must be >= 1.0")
    seen = set()
    limit = int(n * max_padding_ratio)
    for total in range(n, limit + 1):
        for split in factor_splits(total, parts):
            if split not in seen:
                seen.add(split)
                yield split


@lru_cache(maxsize=4096)
def tile_candidates(n: int, include_padded: bool = True) -> Tuple[int, ...]:
    """Candidate single-level tile sizes for a dimension of size ``n``.

    Divisors of ``n``, plus (optionally) ceil-division tilings
    ``ceil(n / k)`` that waste at most one partial tile — the standard
    candidates an imperfect-factorization mapper considers.

    ``ceil(n / k)`` over ``k = 1..n`` takes only ~2*sqrt(n) distinct
    values, so rather than scanning every ``k`` (O(n)) the loop jumps
    between blocks of equal quotient (O(sqrt(n))), using the identity
    ``ceil(n / k) == (n - 1) // k + 1``.  Cached: this sits inside the
    mapper's per-dimension tiling enumeration.
    """
    if n < 1:
        raise ValueError(f"tile_candidates defined for positive n, got {n}")
    candidates = set(divisors(n))
    if include_padded:
        m = n - 1
        k = 1
        while k <= n:
            quotient = m // k
            candidates.add(quotient + 1)  # == ceil(n / k)
            if quotient == 0:
                break
            k = m // quotient + 1  # first k of the next quotient block
    return tuple(sorted(candidates))


def balanced_split(n: int, parts: int) -> Tuple[int, ...]:
    """A single near-balanced padded split of ``n`` into ``parts`` factors.

    Used as a deterministic fallback mapping; product >= n.

    >>> balanced_split(100, 2)
    (10, 10)
    """
    if n < 1 or parts < 1:
        raise ValueError("balanced_split needs positive n and parts")
    root = max(1, round(n ** (1.0 / parts)))
    factors = [root] * (parts - 1)
    remaining = ceil_div(n, root ** (parts - 1))
    factors.append(remaining)
    return tuple(factors)
