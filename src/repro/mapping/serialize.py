"""Serialization of mappings to and from plain dictionaries.

Mappings are the experiment-defining artifact (a schedule found by an
expensive search is worth keeping), so they round-trip through
JSON-compatible dicts::

    {
      "levels": [
        {"storage": "DRAM", "loops": [["C", 4], ["M", 2]]},
        {"storage": "GB", "loops": [["P", 8]]}
      ],
      "spatials": [
        {"fanout": "pe", "factors": {"M": 16}}
      ]
    }

Loops are listed outermost first, matching
:class:`~repro.mapping.mapping.LevelMapping`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping as TMapping

from repro.exceptions import MappingError
from repro.mapping.mapping import (
    FanoutMapping,
    LevelMapping,
    Mapping,
    TemporalLoop,
)
from repro.workloads.dims import Dim


def mapping_to_dict(mapping: Mapping) -> Dict[str, Any]:
    """Serialize a mapping to a JSON-compatible dict."""
    return {
        "levels": [
            {
                "storage": level.storage,
                "loops": [[loop.dim.value, loop.bound]
                          for loop in level.loops],
            }
            for level in mapping.levels
        ],
        "spatials": [
            {
                "fanout": spatial.fanout,
                "factors": {dim.value: factor
                            for dim, factor in spatial.factors.items()},
            }
            for spatial in mapping.spatials
        ],
    }


def mapping_from_dict(spec: TMapping[str, Any]) -> Mapping:
    """Rebuild a mapping from its dict form."""
    if "levels" not in spec:
        raise MappingError("mapping spec missing 'levels'")
    levels: List[LevelMapping] = []
    for level_spec in spec["levels"]:
        try:
            loops = tuple(
                TemporalLoop(Dim(dim), int(bound))
                for dim, bound in level_spec.get("loops", ())
            )
            levels.append(LevelMapping(storage=str(level_spec["storage"]),
                                       loops=loops))
        except (KeyError, ValueError) as error:
            raise MappingError(
                f"malformed level spec {level_spec!r}: {error}"
            ) from error
    spatials: List[FanoutMapping] = []
    for spatial_spec in spec.get("spatials", ()):
        try:
            factors = {Dim(dim): int(factor)
                       for dim, factor
                       in spatial_spec.get("factors", {}).items()}
            spatials.append(FanoutMapping(fanout=str(spatial_spec["fanout"]),
                                          factors=factors))
        except (KeyError, ValueError) as error:
            raise MappingError(
                f"malformed spatial spec {spatial_spec!r}: {error}"
            ) from error
    return Mapping(levels=tuple(levels), spatials=tuple(spatials))
