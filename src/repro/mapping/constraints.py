"""Mapper constraints: the legal-mapping envelope for an architecture.

Architectures restrict mappings beyond what the structural validation in
:mod:`repro.mapping.mapping` enforces.  Albireo, for example, fixes its
window-site fanout to filter dimensions (and fewer of them for strided
layers), and bounds how long its analog integrators may accumulate.
:class:`MappingConstraints` carries these restrictions into the mapper; a
system builder produces one per (architecture, layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping as TMapping, Optional, Tuple

from repro.exceptions import MappingError
from repro.mapping.mapping import Mapping
from repro.workloads.dims import Dim


@dataclass(frozen=True)
class FanoutConstraint:
    """Restrictions on one fanout boundary's spatial mapping."""

    #: Hard cap on the mapped instance count (<= hardware size); models
    #: layer-dependent usability, e.g. strided layers wasting window sites.
    max_instances: Optional[int] = None
    #: Per-dimension cap on the mapped factor.
    max_factor: TMapping[Dim, int] = field(default_factory=dict)
    #: Dimensions the mapper must not map here even if the architecture
    #: nominally allows them.
    forbidden_dims: FrozenSet[Dim] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "max_factor",
                           {Dim(d): int(v) for d, v in self.max_factor.items()})
        object.__setattr__(self, "forbidden_dims",
                           frozenset(Dim(d) for d in self.forbidden_dims))


@dataclass(frozen=True)
class StorageConstraint:
    """Restrictions on one storage level's temporal mapping."""

    #: Cap on the product of this level's temporal loop bounds (e.g. an
    #: analog integrator's accumulation budget).
    max_temporal_product: Optional[int] = None
    #: Fraction of the hardware capacity mappings may occupy (headroom for
    #: control state / double buffering).
    capacity_fraction: float = 1.0
    #: Bits already committed at this level (e.g. resident inter-layer
    #: activations under fusion); subtracted from usable capacity.
    reserved_bits: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.capacity_fraction <= 1.0:
            raise MappingError(
                f"capacity_fraction must be in (0, 1], got "
                f"{self.capacity_fraction}"
            )
        if self.reserved_bits < 0:
            raise MappingError("reserved_bits must be >= 0")


@dataclass(frozen=True)
class MappingConstraints:
    """Constraint set consumed by the mapper.

    Keys are architecture node names.  Missing entries mean "only the
    architecture's own rules apply".
    """

    fanouts: TMapping[str, FanoutConstraint] = field(default_factory=dict)
    storages: TMapping[str, StorageConstraint] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "fanouts", dict(self.fanouts))
        object.__setattr__(self, "storages", dict(self.storages))

    def fanout(self, name: str) -> FanoutConstraint:
        return self.fanouts.get(name, FanoutConstraint())

    def storage(self, name: str) -> StorageConstraint:
        return self.storages.get(name, StorageConstraint())

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def check(self, mapping: Mapping) -> None:
        """Raise :class:`MappingError` if ``mapping`` violates a constraint.

        Structural validity against the architecture is checked separately
        by :meth:`repro.mapping.mapping.Mapping.validate`.
        """
        for spatial in mapping.spatials:
            constraint = self.fanout(spatial.fanout)
            if (constraint.max_instances is not None
                    and spatial.factor_product > constraint.max_instances):
                raise MappingError(
                    f"fanout {spatial.fanout!r}: mapped "
                    f"{spatial.factor_product} instances, constraint allows "
                    f"{constraint.max_instances}"
                )
            for dim, factor in spatial.factors.items():
                if dim in constraint.forbidden_dims:
                    raise MappingError(
                        f"fanout {spatial.fanout!r}: dimension {dim.value} "
                        f"is forbidden by constraints"
                    )
                cap = constraint.max_factor.get(dim)
                if cap is not None and factor > cap:
                    raise MappingError(
                        f"fanout {spatial.fanout!r}: factor {factor} on "
                        f"{dim.value} exceeds constraint cap {cap}"
                    )
        for level in mapping.levels:
            constraint = self.storage(level.storage)
            if (constraint.max_temporal_product is not None
                    and level.factor_product > constraint.max_temporal_product):
                raise MappingError(
                    f"storage {level.storage!r}: temporal product "
                    f"{level.factor_product} exceeds constraint cap "
                    f"{constraint.max_temporal_product}"
                )
