"""Unit conventions and helpers used throughout the model.

The model works in a small set of base units, chosen so that the numbers
that appear in the photonic-accelerator literature are convenient to read:

* energy   — picojoules (pJ)
* time     — nanoseconds (ns)
* power    — milliwatts (mW); note 1 mW * 1 ns == 1 pJ, so the three units
  are mutually consistent and power*time products need no conversion factor
* area     — square micrometers (um^2)
* distance — millimeters (mm), the natural scale of on-chip waveguides
* data     — bits

Optical losses and gains are handled in decibels with explicit conversion
helpers, since mixing dB and linear values silently is the most common bug
in photonic link-budget arithmetic.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Energy prefixes, expressed in the base unit (picojoules).
# ---------------------------------------------------------------------------
PICOJOULE = 1.0
FEMTOJOULE = 1e-3
NANOJOULE = 1e3
MICROJOULE = 1e6
MILLIJOULE = 1e9
JOULE = 1e12

# ---------------------------------------------------------------------------
# Time prefixes, expressed in the base unit (nanoseconds).
# ---------------------------------------------------------------------------
NANOSECOND = 1.0
PICOSECOND = 1e-3
MICROSECOND = 1e3
MILLISECOND = 1e6
SECOND = 1e9

# ---------------------------------------------------------------------------
# Power prefixes, expressed in the base unit (milliwatts).
# 1 mW * 1 ns = 1e-3 W * 1e-9 s = 1e-12 J = 1 pJ, so POWER * TIME -> ENERGY
# holds with no conversion factor.
# ---------------------------------------------------------------------------
MILLIWATT = 1.0
MICROWATT = 1e-3
WATT = 1e3

# ---------------------------------------------------------------------------
# Area, expressed in the base unit (square micrometers).
# ---------------------------------------------------------------------------
SQUARE_MICROMETER = 1.0
SQUARE_MILLIMETER = 1e6

# ---------------------------------------------------------------------------
# Data sizes, expressed in the base unit (bits).
# ---------------------------------------------------------------------------
BIT = 1
BYTE = 8
KIBIBYTE = 8 * 1024
MEBIBYTE = 8 * 1024 * 1024
GIBIBYTE = 8 * 1024 * 1024 * 1024


def db_to_linear(db: float) -> float:
    """Convert a power ratio in decibels to a linear power ratio.

    >>> db_to_linear(3.0103)  # doctest: +ELLIPSIS
    2.0...
    """
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises ``ValueError`` for non-positive ratios, which have no dB
    representation; callers that can legitimately see a zero (for example an
    unused optical path) should guard before converting.
    """
    if ratio <= 0.0:
        raise ValueError(f"cannot express non-positive ratio {ratio!r} in dB")
    return 10.0 * math.log10(ratio)


def ghz_to_cycle_ns(frequency_ghz: float) -> float:
    """Return the cycle time in nanoseconds of a clock at ``frequency_ghz``."""
    if frequency_ghz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz!r}")
    return 1.0 / frequency_ghz


def format_energy(picojoules: float) -> str:
    """Render an energy in the most readable SI prefix.

    >>> format_energy(0.0005)
    '0.500 fJ'
    >>> format_energy(1234.5)
    '1.234 nJ'
    """
    magnitude = abs(picojoules)
    if magnitude < 1.0:
        return f"{picojoules / FEMTOJOULE:.3f} fJ"
    if magnitude < NANOJOULE:
        return f"{picojoules:.3f} pJ"
    if magnitude < MICROJOULE:
        return f"{picojoules / NANOJOULE:.3f} nJ"
    if magnitude < MILLIJOULE:
        return f"{picojoules / MICROJOULE:.3f} uJ"
    return f"{picojoules / MILLIJOULE:.3f} mJ"


def format_bits(bits: float) -> str:
    """Render a bit count with a binary prefix.

    >>> format_bits(16 * 1024 * 8)
    '16.0 KiB'
    """
    if bits < KIBIBYTE:
        return f"{bits / BYTE:.1f} B"
    if bits < MEBIBYTE:
        return f"{bits / KIBIBYTE:.1f} KiB"
    if bits < GIBIBYTE:
        return f"{bits / MEBIBYTE:.1f} MiB"
    return f"{bits / GIBIBYTE:.2f} GiB"


def format_count(count: float) -> str:
    """Render a large count with an SI suffix (K/M/G).

    >>> format_count(1_820_000_000)
    '1.82G'
    """
    magnitude = abs(count)
    if magnitude < 1e3:
        return f"{count:.0f}"
    if magnitude < 1e6:
        return f"{count / 1e3:.2f}K"
    if magnitude < 1e9:
        return f"{count / 1e6:.2f}M"
    return f"{count / 1e9:.2f}G"
