"""Single-layer workload shapes.

:class:`ConvLayer` captures everything the analytical model needs to know
about one DNN layer: the seven loop bounds, strides, and datatype widths.
Helper constructors cover the common layer families (dense, depthwise).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.exceptions import WorkloadError
from repro.workloads.dims import Dim


@dataclass(frozen=True)
class ConvLayer:
    """Shape of a 2-D convolution (or fully-connected) layer.

    Parameters follow the Timeloop convention (see :mod:`repro.workloads.dims`).
    The input feature-map size is derived, not stored: for unit dilation,
    ``H = (P - 1) * stride_h + R`` and ``W = (Q - 1) * stride_w + S``.

    ``groups`` models grouped convolution (AlexNet's historical two-GPU
    split, ResNeXt, depthwise): input channels ``C`` and output channels
    ``M`` are both *per-layer totals*, and each output channel only sees
    ``C / groups`` input channels.  MAC counts and weight sizes account
    for this.

    ``bits_per_weight`` / ``bits_per_activation`` set datatype widths; the
    photonic systems modeled in the paper use 8-bit symbols end to end.
    """

    name: str
    n: int = 1
    m: int = 1
    c: int = 1
    p: int = 1
    q: int = 1
    r: int = 1
    s: int = 1
    stride_h: int = 1
    stride_w: int = 1
    groups: int = 1
    bits_per_weight: int = 8
    bits_per_activation: int = 8
    #: Free-form tag used by network builders ("conv", "fc", "pointwise", ...).
    kind: str = field(default="conv", compare=False)

    def __post_init__(self) -> None:
        for attribute in ("n", "m", "c", "p", "q", "r", "s",
                          "stride_h", "stride_w", "groups",
                          "bits_per_weight", "bits_per_activation"):
            value = getattr(self, attribute)
            if not isinstance(value, int) or value < 1:
                raise WorkloadError(
                    f"layer {self.name!r}: {attribute} must be a positive "
                    f"integer, got {value!r}"
                )
        if self.m % self.groups != 0 or self.c % self.groups != 0:
            raise WorkloadError(
                f"layer {self.name!r}: groups={self.groups} must divide both "
                f"M={self.m} and C={self.c}"
            )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def input_h(self) -> int:
        """Input feature-map height implied by P, R, and the stride."""
        return (self.p - 1) * self.stride_h + self.r

    @property
    def input_w(self) -> int:
        """Input feature-map width implied by Q, S, and the stride."""
        return (self.q - 1) * self.stride_w + self.s

    @property
    def dims(self) -> Dict[Dim, int]:
        """The seven loop bounds as a dimension map."""
        return {
            Dim.N: self.n,
            Dim.M: self.m,
            Dim.C: self.c,
            Dim.P: self.p,
            Dim.Q: self.q,
            Dim.R: self.r,
            Dim.S: self.s,
        }

    @property
    def strides(self) -> Tuple[int, int]:
        return (self.stride_h, self.stride_w)

    # ------------------------------------------------------------------
    # Work and tensor volumes
    # ------------------------------------------------------------------
    @property
    def macs(self) -> int:
        """Multiply-accumulate operations required by this layer."""
        per_group_c = self.c // self.groups
        return self.n * self.m * per_group_c * self.p * self.q * self.r * self.s

    @property
    def weight_elements(self) -> int:
        return self.m * (self.c // self.groups) * self.r * self.s

    @property
    def input_elements(self) -> int:
        return self.n * self.c * self.input_h * self.input_w

    @property
    def output_elements(self) -> int:
        return self.n * self.m * self.p * self.q

    @property
    def weight_bits(self) -> int:
        return self.weight_elements * self.bits_per_weight

    @property
    def input_bits(self) -> int:
        return self.input_elements * self.bits_per_activation

    @property
    def output_bits(self) -> int:
        return self.output_elements * self.bits_per_activation

    # ------------------------------------------------------------------
    # Classification helpers used by utilization modeling
    # ------------------------------------------------------------------
    @property
    def is_fully_connected(self) -> bool:
        """True if the layer has no spatial structure (P=Q=R=S=1)."""
        return self.p == 1 and self.q == 1 and self.r == 1 and self.s == 1

    @property
    def is_strided(self) -> bool:
        return self.stride_h > 1 or self.stride_w > 1

    @property
    def is_pointwise(self) -> bool:
        """True for 1x1 convolutions with spatial outputs."""
        return self.r == 1 and self.s == 1 and not self.is_fully_connected

    @property
    def is_depthwise(self) -> bool:
        return self.groups == self.c and self.groups == self.m and self.groups > 1

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def with_batch(self, n: int) -> "ConvLayer":
        """Return a copy of this layer with batch size ``n``."""
        if n < 1:
            raise WorkloadError(f"batch size must be >= 1, got {n}")
        return replace(self, n=n)

    def ungrouped(self) -> "ConvLayer":
        """Return an equivalent layer with ``groups=1``.

        The per-group channel count is preserved so MAC counts match; this
        is the approximation used when an architecture has no native support
        for grouped convolution.
        """
        if self.groups == 1:
            return self
        return replace(self, c=self.c // self.groups, groups=1)

    def describe(self) -> str:
        """One-line human-readable summary."""
        shape = (
            f"N={self.n} M={self.m} C={self.c} "
            f"P={self.p} Q={self.q} R={self.r} S={self.s}"
        )
        extras = []
        if self.is_strided:
            extras.append(f"stride={self.stride_h}x{self.stride_w}")
        if self.groups > 1:
            extras.append(f"groups={self.groups}")
        suffix = (" [" + ", ".join(extras) + "]") if extras else ""
        return f"{self.name}: {shape}{suffix}"


def dense_layer(
    name: str,
    in_features: int,
    out_features: int,
    batch: int = 1,
    bits: int = 8,
) -> ConvLayer:
    """Build a fully-connected layer as the canonical degenerate convolution."""
    return ConvLayer(
        name=name,
        n=batch,
        m=out_features,
        c=in_features,
        bits_per_weight=bits,
        bits_per_activation=bits,
        kind="fc",
    )


def depthwise_layer(
    name: str,
    channels: int,
    p: int,
    q: int,
    r: int = 3,
    s: int = 3,
    stride: int = 1,
    batch: int = 1,
) -> ConvLayer:
    """Build a depthwise convolution (one filter per channel)."""
    return ConvLayer(
        name=name,
        n=batch,
        m=channels,
        c=channels,
        p=p,
        q=q,
        r=r,
        s=s,
        stride_h=stride,
        stride_w=stride,
        groups=channels,
        kind="depthwise",
    )
