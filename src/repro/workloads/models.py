"""Model zoo: the DNN workloads used by the paper's experiments.

The paper evaluates three ImageNet-era networks:

* **VGG16** (Simonyan & Zisserman 2015) — throughput validation, Fig. 3.
* **AlexNet** (Krizhevsky et al. 2012) — throughput validation, Fig. 3; its
  strided 11x11 first layer and large FC layers are the under-utilization
  case study.
* **ResNet18** (He et al. 2016) — the full-system energy workload of
  Figs. 4 and 5.

Shapes assume the standard 224x224 (227x227 for AlexNet) ImageNet input,
8-bit weights and activations (the photonic symbol width used throughout
the paper), and batch size 1 unless rebatched with
:meth:`~repro.workloads.network.Network.with_batch`.

Reference MAC counts (used as test oracles): VGG16 ~= 15.47 G, AlexNet
~= 0.72 G (with its historical grouped convolutions), ResNet18 ~= 1.81 G.
"""

from __future__ import annotations

from typing import List

from repro.workloads.layer import ConvLayer, dense_layer, depthwise_layer
from repro.workloads.network import LayerRepetition, Network


def vgg16(batch: int = 1) -> Network:
    """VGG16: thirteen 3x3 stride-1 convolutions plus three FC layers.

    Every convolution is an unstrided 3x3 — the layer family Albireo's
    locally-connected photonic fabric is designed for, which is why the
    paper finds near-ideal throughput on this network.
    """
    def conv(name: str, c: int, m: int, hw: int) -> ConvLayer:
        return ConvLayer(name=name, n=batch, m=m, c=c, p=hw, q=hw, r=3, s=3)

    layers: List[ConvLayer] = [
        conv("conv1_1", 3, 64, 224),
        conv("conv1_2", 64, 64, 224),
        conv("conv2_1", 64, 128, 112),
        conv("conv2_2", 128, 128, 112),
        conv("conv3_1", 128, 256, 56),
        conv("conv3_2", 256, 256, 56),
        conv("conv3_3", 256, 256, 56),
        conv("conv4_1", 256, 512, 28),
        conv("conv4_2", 512, 512, 28),
        conv("conv4_3", 512, 512, 28),
        conv("conv5_1", 512, 512, 14),
        conv("conv5_2", 512, 512, 14),
        conv("conv5_3", 512, 512, 14),
        dense_layer("fc6", 25088, 4096, batch=batch),
        dense_layer("fc7", 4096, 4096, batch=batch),
        dense_layer("fc8", 4096, 1000, batch=batch),
    ]
    return Network.from_layers("VGG16", layers)


def alexnet(batch: int = 1) -> Network:
    """AlexNet with its historical grouped convolutions.

    The 11x11 stride-4 first layer and the three large FC layers are the
    shapes the paper identifies as severely under-utilizing Albireo.
    """
    layers = [
        ConvLayer(name="conv1", n=batch, m=96, c=3, p=55, q=55, r=11, s=11,
                  stride_h=4, stride_w=4),
        ConvLayer(name="conv2", n=batch, m=256, c=96, p=27, q=27, r=5, s=5,
                  groups=2),
        ConvLayer(name="conv3", n=batch, m=384, c=256, p=13, q=13, r=3, s=3),
        ConvLayer(name="conv4", n=batch, m=384, c=384, p=13, q=13, r=3, s=3,
                  groups=2),
        ConvLayer(name="conv5", n=batch, m=256, c=384, p=13, q=13, r=3, s=3,
                  groups=2),
        dense_layer("fc6", 9216, 4096, batch=batch),
        dense_layer("fc7", 4096, 4096, batch=batch),
        dense_layer("fc8", 4096, 1000, batch=batch),
    ]
    return Network.from_layers("AlexNet", layers)


def resnet18(batch: int = 1) -> Network:
    """ResNet18 with residual-block liveness annotations.

    Each basic block's skip tensor must stay resident while the block's two
    convolutions execute; ``resident_extra_bits`` carries that cost into the
    fused-execution buffer-sizing analysis of the paper's Fig. 4.

    Downsample (1x1 stride-2 projection) convolutions of the first block in
    stages 2-4 are included: they are pointwise *and* strided, which matters
    for utilization.
    """
    bits = 8

    def conv(name: str, c: int, m: int, hw: int, stride: int = 1,
             r: int = 3, skip_bits: int = 0) -> LayerRepetition:
        layer = ConvLayer(name=name, n=batch, m=m, c=c, p=hw, q=hw, r=r, s=r,
                          stride_h=stride, stride_w=stride)
        return LayerRepetition(layer=layer, count=1,
                               resident_extra_bits=skip_bits)

    def skip(c: int, hw: int) -> int:
        """Bits of the residual tensor that stays live across a block."""
        return batch * c * hw * hw * bits

    entries: List[LayerRepetition] = []
    # Stem: 7x7 stride-2 convolution reading the image from DRAM.
    stem = ConvLayer(name="conv1", n=batch, m=64, c=3, p=112, q=112, r=7, s=7,
                     stride_h=2, stride_w=2)
    entries.append(LayerRepetition(layer=stem, count=1,
                                   consumes_previous_output=False))
    # Stage 1: two basic blocks at 56x56, 64 channels (after max-pool).
    for block in (1, 2):
        entries.append(conv(f"layer1.{block}.conv1", 64, 64, 56,
                            skip_bits=skip(64, 56)))
        entries.append(conv(f"layer1.{block}.conv2", 64, 64, 56,
                            skip_bits=skip(64, 56)))
    # Stages 2-4 halve resolution and double channels; the first block of
    # each stage strides and carries a 1x1 downsample projection.
    stage_shapes = ((2, 128, 28), (3, 256, 14), (4, 512, 7))
    for stage, channels, hw in stage_shapes:
        in_channels = channels // 2
        entries.append(conv(f"layer{stage}.1.conv1", in_channels, channels, hw,
                            stride=2, skip_bits=skip(in_channels, hw * 2)))
        entries.append(conv(f"layer{stage}.1.conv2", channels, channels, hw,
                            skip_bits=skip(channels, hw)))
        entries.append(conv(f"layer{stage}.1.downsample", in_channels, channels,
                            hw, stride=2, r=1,
                            skip_bits=skip(in_channels, hw * 2)))
        entries.append(conv(f"layer{stage}.2.conv1", channels, channels, hw,
                            skip_bits=skip(channels, hw)))
        entries.append(conv(f"layer{stage}.2.conv2", channels, channels, hw,
                            skip_bits=skip(channels, hw)))
    # Classifier.
    entries.append(LayerRepetition(layer=dense_layer("fc", 512, 1000,
                                                     batch=batch), count=1))
    return Network(name="ResNet18", entries=tuple(entries))


def lenet5(batch: int = 1) -> Network:
    """LeNet-5 on 32x32 inputs — a small workload for tutorials and tests."""
    layers = [
        ConvLayer(name="conv1", n=batch, m=6, c=1, p=28, q=28, r=5, s=5),
        ConvLayer(name="conv2", n=batch, m=16, c=6, p=10, q=10, r=5, s=5),
        dense_layer("fc1", 400, 120, batch=batch),
        dense_layer("fc2", 120, 84, batch=batch),
        dense_layer("fc3", 84, 10, batch=batch),
    ]
    return Network.from_layers("LeNet5", layers)


def mobilenet_v1(batch: int = 1, width_multiplier: float = 1.0) -> Network:
    """MobileNetV1: depthwise-separable convolutions on 224x224 inputs.

    A deliberately adversarial workload for broadcast-photonic fabrics:
    depthwise layers have one input channel per filter (no WDM channel
    parallelism, no input-broadcast sharing across output channels), and
    pointwise (1x1) layers cannot use the window-site array.  Reference
    MAC count at width 1.0: ~0.57 G.
    """
    def channels(base: int) -> int:
        return max(1, int(base * width_multiplier))

    entries: List[LayerRepetition] = []
    stem = ConvLayer(name="conv1", n=batch, m=channels(32), c=3,
                     p=112, q=112, r=3, s=3, stride_h=2, stride_w=2)
    entries.append(LayerRepetition(layer=stem, count=1,
                                   consumes_previous_output=False))
    # (input channels, output channels, output spatial size, dw stride)
    # per depthwise-separable block.
    blocks = [
        (32, 64, 112, 1),
        (64, 128, 56, 2), (128, 128, 56, 1),
        (128, 256, 28, 2), (256, 256, 28, 1),
        (256, 512, 14, 2),
        (512, 512, 14, 1), (512, 512, 14, 1), (512, 512, 14, 1),
        (512, 512, 14, 1), (512, 512, 14, 1),
        (512, 1024, 7, 2), (1024, 1024, 7, 1),
    ]
    for index, (c_in, c_out, out_hw, stride) in enumerate(blocks, start=2):
        dw = depthwise_layer(f"conv{index}.dw", channels(c_in),
                             p=out_hw, q=out_hw,
                             stride=stride, batch=batch)
        entries.append(LayerRepetition(layer=dw, count=1))
        pw = ConvLayer(name=f"conv{index}.pw", n=batch,
                       m=channels(c_out), c=channels(c_in),
                       p=out_hw, q=out_hw, r=1, s=1)
        entries.append(LayerRepetition(layer=pw, count=1))
    entries.append(LayerRepetition(
        layer=dense_layer("fc", channels(1024), 1000, batch=batch),
        count=1))
    return Network(name="MobileNetV1", entries=tuple(entries))


def tiny_cnn(batch: int = 1) -> Network:
    """A three-layer CNN small enough for exhaustive mapper search in tests."""
    layers = [
        ConvLayer(name="conv1", n=batch, m=8, c=3, p=16, q=16, r=3, s=3),
        ConvLayer(name="conv2", n=batch, m=16, c=8, p=8, q=8, r=3, s=3,
                  stride_h=2, stride_w=2),
        dense_layer("fc", 16 * 8 * 8, 10, batch=batch),
    ]
    return Network.from_layers("TinyCNN", layers)


#: Workload builders by CLI/spec name, in the order front-ends list them.
NETWORK_BUILDERS = {
    "tiny": tiny_cnn,
    "lenet5": lenet5,
    "alexnet": alexnet,
    "resnet18": resnet18,
    "vgg16": vgg16,
    "mobilenet": mobilenet_v1,
}


def network_names() -> List[str]:
    """The workload names resolvable by :func:`network_by_name`."""
    return list(NETWORK_BUILDERS)


def network_by_name(name: str, batch: int = 1) -> Network:
    """Build the named workload (the CLI's and study specs' resolver)."""
    from repro.exceptions import WorkloadError

    builder = NETWORK_BUILDERS.get(name)
    if builder is None:
        raise WorkloadError(
            f"unknown network {name!r}; options: {sorted(NETWORK_BUILDERS)}")
    return builder(batch=batch)
