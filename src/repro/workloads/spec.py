"""Serialization of workloads to and from plain dictionaries.

Networks round-trip through JSON-compatible dicts so workloads can live
in data files next to architecture specs::

    {
      "name": "my-net",
      "layers": [
        {"name": "conv1", "m": 64, "c": 3, "p": 112, "q": 112,
         "r": 7, "s": 7, "stride": 2, "first": true},
        {"name": "fc", "m": 1000, "c": 512, "kind": "fc"}
      ]
    }

``stride`` expands to both axes unless ``stride_h``/``stride_w`` are
given; ``first: true`` marks layers whose input comes from DRAM
(defaults: only the first listed layer); ``skip_bits`` carries residual
liveness for fusion studies.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.exceptions import WorkloadError
from repro.workloads.layer import ConvLayer
from repro.workloads.network import LayerRepetition, Network

_LAYER_KEYS = {"name", "n", "m", "c", "p", "q", "r", "s", "stride",
               "stride_h", "stride_w", "groups", "bits", "kind",
               "first", "count", "skip_bits"}


def layer_from_dict(spec: Mapping[str, Any]) -> ConvLayer:
    """Build one layer from its dict form."""
    unknown = set(spec) - _LAYER_KEYS
    if unknown:
        raise WorkloadError(
            f"layer spec has unknown keys {sorted(unknown)}")
    if "name" not in spec:
        raise WorkloadError("layer spec missing 'name'")
    stride = int(spec.get("stride", 1))
    bits = int(spec.get("bits", 8))
    return ConvLayer(
        name=str(spec["name"]),
        n=int(spec.get("n", 1)),
        m=int(spec.get("m", 1)),
        c=int(spec.get("c", 1)),
        p=int(spec.get("p", 1)),
        q=int(spec.get("q", 1)),
        r=int(spec.get("r", 1)),
        s=int(spec.get("s", 1)),
        stride_h=int(spec.get("stride_h", stride)),
        stride_w=int(spec.get("stride_w", stride)),
        groups=int(spec.get("groups", 1)),
        bits_per_weight=bits,
        bits_per_activation=bits,
        kind=str(spec.get("kind", "conv")),
    )


def layer_to_dict(layer: ConvLayer) -> Dict[str, Any]:
    spec: Dict[str, Any] = {"name": layer.name}
    for key, value, default in (
            ("n", layer.n, 1), ("m", layer.m, 1), ("c", layer.c, 1),
            ("p", layer.p, 1), ("q", layer.q, 1), ("r", layer.r, 1),
            ("s", layer.s, 1), ("stride_h", layer.stride_h, 1),
            ("stride_w", layer.stride_w, 1), ("groups", layer.groups, 1)):
        if value != default:
            spec[key] = value
    if layer.bits_per_weight != 8:
        spec["bits"] = layer.bits_per_weight
    if layer.kind != "conv":
        spec["kind"] = layer.kind
    return spec


def network_from_dict(spec: Mapping[str, Any]) -> Network:
    """Build a network from its dict form."""
    if "name" not in spec or "layers" not in spec:
        raise WorkloadError("network spec needs 'name' and 'layers'")
    layers = list(spec["layers"])
    if not layers:
        raise WorkloadError(f"network {spec['name']!r} has no layers")
    entries: List[LayerRepetition] = []
    for index, layer_spec in enumerate(layers):
        first = bool(layer_spec.get("first", index == 0))
        entries.append(LayerRepetition(
            layer=layer_from_dict(layer_spec),
            count=int(layer_spec.get("count", 1)),
            consumes_previous_output=not first,
            resident_extra_bits=int(layer_spec.get("skip_bits", 0)),
        ))
    return Network(name=str(spec["name"]), entries=tuple(entries))


def network_to_dict(network: Network) -> Dict[str, Any]:
    layers = []
    for index, entry in enumerate(network.entries):
        layer_spec = layer_to_dict(entry.layer)
        if entry.count != 1:
            layer_spec["count"] = entry.count
        default_first = index == 0
        is_first = not entry.consumes_previous_output
        if is_first != default_first:
            layer_spec["first"] = is_first
        if entry.resident_extra_bits:
            layer_spec["skip_bits"] = entry.resident_extra_bits
        layers.append(layer_spec)
    return {"name": network.name, "layers": layers}
