"""DNN workload definitions.

This package describes *what* is computed: convolutional and fully-connected
layer shapes, the three dataspaces (weights, inputs, outputs) each layer
touches, and whole networks assembled from layers.  Analytical accelerator
models only need tensor *shapes*, never tensor values, so a workload here is
purely a shape-level object.

Public surface:

* :class:`~repro.workloads.dims.Dim` — the seven canonical convolution loop
  dimensions (N, M, C, P, Q, R, S).
* :class:`~repro.workloads.layer.ConvLayer` — a single convolution /
  fully-connected layer.
* :class:`~repro.workloads.dataspace.DataSpace` — weights / inputs / outputs.
* :class:`~repro.workloads.network.Network` — an ordered set of layers.
* :mod:`~repro.workloads.models` — VGG16, AlexNet, ResNet18, and small test
  networks used by the paper's experiments.
"""

from repro.workloads.dataspace import (
    ALL_DATASPACES,
    DataSpace,
    dataspace_tile_size,
    relevant_dims,
    reduction_dims,
)
from repro.workloads.dims import ALL_DIMS, Dim
from repro.workloads.layer import ConvLayer, dense_layer, depthwise_layer
from repro.workloads.models import (
    NETWORK_BUILDERS,
    alexnet,
    lenet5,
    mobilenet_v1,
    network_by_name,
    network_names,
    resnet18,
    tiny_cnn,
    vgg16,
)
from repro.workloads.network import LayerRepetition, Network
from repro.workloads.spec import (
    layer_from_dict,
    layer_to_dict,
    network_from_dict,
    network_to_dict,
)

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "layer_to_dict",
    "layer_from_dict",
    "ALL_DATASPACES",
    "ALL_DIMS",
    "ConvLayer",
    "DataSpace",
    "Dim",
    "LayerRepetition",
    "Network",
    "alexnet",
    "dataspace_tile_size",
    "dense_layer",
    "depthwise_layer",
    "lenet5",
    "mobilenet_v1",
    "NETWORK_BUILDERS",
    "network_by_name",
    "network_names",
    "reduction_dims",
    "relevant_dims",
    "resnet18",
    "tiny_cnn",
    "vgg16",
]
