"""Canonical loop dimensions for convolutional workloads.

We use the Timeloop naming convention, which the paper's toolchain
(CiMLoop -> Timeloop) also uses:

=====  =============================================
Dim    Meaning
=====  =============================================
``N``  batch size
``M``  output channels (number of filters)
``C``  input channels
``P``  output feature-map height
``Q``  output feature-map width
``R``  filter height
``S``  filter width
=====  =============================================

A dense (fully-connected) layer is the special case
``P = Q = R = S = 1`` with ``M`` outputs and ``C`` inputs.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, Mapping, Tuple


class Dim(str, Enum):
    """One of the seven canonical convolution loop dimensions."""

    N = "N"
    M = "M"
    C = "C"
    P = "P"
    Q = "Q"
    R = "R"
    S = "S"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    def __repr__(self) -> str:
        return f"Dim.{self.value}"


#: All dimensions in canonical order (the order used for default loop nests).
ALL_DIMS: Tuple[Dim, ...] = (
    Dim.N,
    Dim.M,
    Dim.C,
    Dim.P,
    Dim.Q,
    Dim.R,
    Dim.S,
)


def full_dim_map(bounds: Mapping[Dim, int]) -> Dict[Dim, int]:
    """Return a dict with an entry for every dimension, defaulting to 1.

    Mapping and tiling code frequently works with partial dimension maps
    (e.g. "tile C by 4, Q by 7"); this helper normalizes them so downstream
    arithmetic never needs ``.get(dim, 1)`` sprinkled everywhere.
    """
    normalized = {dim: 1 for dim in ALL_DIMS}
    for dim, bound in bounds.items():
        if bound < 1:
            raise ValueError(f"dimension {dim} must have bound >= 1, got {bound}")
        normalized[Dim(dim)] = int(bound)
    return normalized


def product_of(bounds: Mapping[Dim, int], dims: Iterable[Dim]) -> int:
    """Product of ``bounds`` over ``dims`` (missing dims count as 1)."""
    result = 1
    for dim in dims:
        result *= int(bounds.get(dim, 1))
    return result
