"""Dataspaces: the three tensors a convolution touches, and their projections.

A *dataspace* is Timeloop's term for one of the tensors involved in a layer:
weights, inputs, or outputs.  Each dataspace is "projected" from the seven
loop dimensions — a loop dimension is *relevant* to a dataspace if iterating
it changes which tensor element is addressed:

* ``WEIGHTS`` <- (M, C, R, S)
* ``OUTPUTS`` <- (N, M, P, Q); the remaining dims (C, R, S) are *reduction*
  dimensions: iterating them accumulates into the same output element.
* ``INPUTS``  <- (N, C, H, W) where H and W are *derived* from (P, R) and
  (Q, S) through the sliding-window relation ``h = p*stride + r``.  Because
  of this coupling, input tile sizes are not simple products of loop bounds;
  :func:`dataspace_tile_size` implements the halo arithmetic.
"""

from __future__ import annotations

from enum import Enum
from typing import FrozenSet, Mapping, Tuple

from repro.workloads.dims import Dim


class DataSpace(str, Enum):
    """One of the three tensors of a convolutional layer."""

    WEIGHTS = "Weights"
    INPUTS = "Inputs"
    OUTPUTS = "Outputs"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    def __repr__(self) -> str:
        return f"DataSpace.{self.name}"


#: All dataspaces in canonical order.
ALL_DATASPACES: Tuple[DataSpace, ...] = (
    DataSpace.WEIGHTS,
    DataSpace.INPUTS,
    DataSpace.OUTPUTS,
)

_RELEVANT = {
    DataSpace.WEIGHTS: frozenset({Dim.M, Dim.C, Dim.R, Dim.S}),
    # P/R and Q/S both project onto the input tensor's H/W axes.
    DataSpace.INPUTS: frozenset({Dim.N, Dim.C, Dim.P, Dim.Q, Dim.R, Dim.S}),
    DataSpace.OUTPUTS: frozenset({Dim.N, Dim.M, Dim.P, Dim.Q}),
}

_REDUCTION = {
    DataSpace.WEIGHTS: frozenset(),
    DataSpace.INPUTS: frozenset(),
    # Iterating C, R, or S revisits the same output element (accumulation).
    DataSpace.OUTPUTS: frozenset({Dim.C, Dim.R, Dim.S}),
}


def relevant_dims(dataspace: DataSpace) -> FrozenSet[Dim]:
    """Dimensions whose iteration addresses new elements of ``dataspace``."""
    return _RELEVANT[dataspace]


def reduction_dims(dataspace: DataSpace) -> FrozenSet[Dim]:
    """Dimensions whose iteration *accumulates* into ``dataspace``.

    Non-empty only for outputs: C, R, and S sweep partial sums into the
    same output element.
    """
    return _REDUCTION[dataspace]


def is_relevant(dataspace: DataSpace, dim: Dim) -> bool:
    """True if ``dim`` addresses distinct elements of ``dataspace``."""
    return dim in _RELEVANT[dataspace]


def dataspace_tile_size(
    dataspace: DataSpace,
    tile_bounds: Mapping[Dim, int],
    stride: Tuple[int, int] = (1, 1),
) -> int:
    """Number of distinct elements of ``dataspace`` covered by a loop tile.

    ``tile_bounds`` gives the extent of each loop dimension inside the tile
    (missing dimensions count as 1).  For weights and outputs this is a plain
    product over the relevant dimensions.  For inputs, the P/R and Q/S pairs
    project onto the same tensor axes with a sliding-window overlap, so the
    tile's height is ``(p - 1) * stride_h + r`` (the halo formula), and
    likewise for width.

    >>> dataspace_tile_size(DataSpace.WEIGHTS, {Dim.M: 2, Dim.C: 3, Dim.R: 3})
    18
    >>> dataspace_tile_size(DataSpace.INPUTS, {Dim.P: 4, Dim.R: 3})
    6
    >>> dataspace_tile_size(DataSpace.INPUTS, {Dim.P: 4, Dim.R: 3}, stride=(2, 1))
    9
    """
    get = lambda dim: int(tile_bounds.get(dim, 1))  # noqa: E731 - local alias
    if dataspace is DataSpace.WEIGHTS:
        return get(Dim.M) * get(Dim.C) * get(Dim.R) * get(Dim.S)
    if dataspace is DataSpace.OUTPUTS:
        return get(Dim.N) * get(Dim.M) * get(Dim.P) * get(Dim.Q)
    # Inputs: halo arithmetic on the coupled (P, R) and (Q, S) pairs.
    stride_h, stride_w = stride
    height = (get(Dim.P) - 1) * stride_h + get(Dim.R)
    width = (get(Dim.Q) - 1) * stride_w + get(Dim.S)
    return get(Dim.N) * get(Dim.C) * height * width
