"""Whole-network workloads: ordered layers plus inter-layer tensor flow.

A :class:`Network` is an ordered sequence of layers with enough connectivity
information for two system-level analyses the paper performs:

* **DRAM traffic accounting** (paper Fig. 4): each layer's inputs come either
  from DRAM or, under layer *fusion*, from the on-chip global buffer where
  the previous layer left them.
* **Throughput aggregation** (paper Fig. 3): total MACs / total cycles over
  all layers.

Networks in the model zoo mark repeated layer shapes with a
:class:`LayerRepetition` count instead of duplicating evaluation work —
layers with identical shapes have identical energy/latency, so evaluating
one and multiplying is exact and makes whole-network evaluation fast
(which is itself one of the paper's claims about the modeling approach).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import WorkloadError
from repro.workloads.layer import ConvLayer


@dataclass(frozen=True)
class LayerRepetition:
    """A layer shape plus how many times it appears consecutively."""

    layer: ConvLayer
    count: int = 1
    #: True when the layer's input tensor is produced by the previous layer
    #: (and can therefore stay on-chip under fusion).  The first layer of a
    #: network reads the image from DRAM and has this set to False.
    consumes_previous_output: bool = True
    #: Extra resident tensor bits required while this layer runs, on top of
    #: its own input/output tiles — used to model residual (skip) connections
    #: whose source activation must stay live across the block.
    resident_extra_bits: int = 0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise WorkloadError(
                f"layer {self.layer.name!r}: repetition count must be >= 1"
            )
        if self.resident_extra_bits < 0:
            raise WorkloadError(
                f"layer {self.layer.name!r}: resident_extra_bits must be >= 0"
            )


@dataclass(frozen=True)
class Network:
    """An ordered DNN workload.

    ``entries`` lists unique layer shapes in execution order with repetition
    counts.  Iterating the network yields ``(layer, count)`` pairs; helper
    properties aggregate MACs and tensor volumes for the whole network.
    """

    name: str
    entries: Tuple[LayerRepetition, ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise WorkloadError(f"network {self.name!r} has no layers")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_layers(
        name: str,
        layers: Sequence[ConvLayer],
        first_reads_dram: bool = True,
    ) -> "Network":
        """Build a network from a flat layer list, merging repeated shapes.

        Consecutive layers with identical shape (everything except the name)
        are merged into one :class:`LayerRepetition`.
        """
        if not layers:
            raise WorkloadError(f"network {name!r} has no layers")
        entries: List[LayerRepetition] = []
        for index, layer in enumerate(layers):
            consumes_previous = index > 0 or not first_reads_dram
            if entries and _same_shape(entries[-1].layer, layer) and consumes_previous:
                previous = entries[-1]
                entries[-1] = LayerRepetition(
                    layer=previous.layer,
                    count=previous.count + 1,
                    consumes_previous_output=previous.consumes_previous_output,
                    resident_extra_bits=previous.resident_extra_bits,
                )
            else:
                entries.append(
                    LayerRepetition(
                        layer=layer,
                        count=1,
                        consumes_previous_output=consumes_previous,
                    )
                )
        return Network(name=name, entries=tuple(entries))

    def with_batch(self, batch: int) -> "Network":
        """Return a copy of the network with every layer at batch size ``batch``."""
        entries = tuple(
            LayerRepetition(
                layer=entry.layer.with_batch(batch),
                count=entry.count,
                consumes_previous_output=entry.consumes_previous_output,
                resident_extra_bits=entry.resident_extra_bits * batch,
            )
            for entry in self.entries
        )
        return Network(name=self.name, entries=entries)

    def map_layers(self, transform: Callable[[ConvLayer], ConvLayer]) -> "Network":
        """Return a copy with ``transform`` applied to every layer shape."""
        entries = tuple(
            LayerRepetition(
                layer=transform(entry.layer),
                count=entry.count,
                consumes_previous_output=entry.consumes_previous_output,
                resident_extra_bits=entry.resident_extra_bits,
            )
            for entry in self.entries
        )
        return Network(name=self.name, entries=entries)

    # ------------------------------------------------------------------
    # Iteration and aggregate statistics
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[LayerRepetition]:
        return iter(self.entries)

    def __len__(self) -> int:
        """Total number of layers, counting repetitions."""
        return sum(entry.count for entry in self.entries)

    @property
    def unique_layer_count(self) -> int:
        return len(self.entries)

    @property
    def total_macs(self) -> int:
        return sum(entry.layer.macs * entry.count for entry in self.entries)

    @property
    def total_weight_bits(self) -> int:
        return sum(entry.layer.weight_bits * entry.count for entry in self.entries)

    @property
    def total_input_bits(self) -> int:
        """Sum of every layer's input tensor size (inter-layer tensors counted
        once per consumer, as a DRAM-traffic upper bound for unfused execution)."""
        return sum(entry.layer.input_bits * entry.count for entry in self.entries)

    @property
    def total_output_bits(self) -> int:
        return sum(entry.layer.output_bits * entry.count for entry in self.entries)

    @property
    def max_activation_bits(self) -> int:
        """Largest simultaneous input+output+residual footprint of any layer.

        This is the global-buffer capacity a fused execution needs to keep
        inter-layer activations on chip (paper Fig. 4's "larger global
        buffer" cost of fusion).
        """
        footprint = 0
        for entry in self.entries:
            layer_bits = (
                entry.layer.input_bits
                + entry.layer.output_bits
                + entry.resident_extra_bits
            )
            footprint = max(footprint, layer_bits)
        return footprint

    def describe(self) -> str:
        """Multi-line human-readable summary of the network."""
        lines = [f"{self.name}: {len(self)} layers, {self.total_macs:,} MACs"]
        for entry in self.entries:
            prefix = f"  x{entry.count} " if entry.count > 1 else "     "
            lines.append(prefix + entry.layer.describe())
        return "\n".join(lines)


def _same_shape(a: ConvLayer, b: ConvLayer) -> bool:
    """Shape equality ignoring the layer name."""
    return (
        a.n == b.n and a.m == b.m and a.c == b.c
        and a.p == b.p and a.q == b.q and a.r == b.r and a.s == b.s
        and a.stride_h == b.stride_h and a.stride_w == b.stride_w
        and a.groups == b.groups
        and a.bits_per_weight == b.bits_per_weight
        and a.bits_per_activation == b.bits_per_activation
    )
