"""Exception hierarchy for the modeling library.

All library errors derive from :class:`ReproError` so callers can install a
single ``except`` clause around model evaluation.  Subclasses partition the
failure modes a user can hit: malformed specifications, invalid mappings,
capacity violations, and calibration/lookup failures in the energy library.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SpecError(ReproError):
    """An architecture, component, or workload specification is malformed."""


class WorkloadError(SpecError):
    """A DNN layer or network definition is inconsistent (e.g. bad shapes)."""


class MappingError(ReproError):
    """A mapping is structurally invalid for its workload or architecture."""


class CapacityError(MappingError):
    """A mapping requires more storage at a level than the hardware provides."""


class EstimationError(ReproError):
    """The energy/area estimation layer could not produce an estimate."""


class CalibrationError(EstimationError):
    """A component parameter set is outside the calibrated validity range."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""


class TaskTimeoutError(ReproError):
    """A sweep sub-task exceeded its ``FailurePolicy.task_timeout`` deadline.

    Raised worker-side by the watchdog (SIGALRM-based); under a
    retrying policy the task is re-attempted, otherwise the failure
    surfaces as a :class:`~repro.api.results.FailedRecord` or aborts
    the run (``on_error="raise"``).
    """


class JobQuarantinedError(ReproError):
    """A job was skipped because the cache's ``failures`` namespace marks
    it as deterministically failing (poison).  Recorded as the error type
    of the :class:`~repro.api.results.FailedRecord` a rerun produces for
    a quarantined coordinate."""


class WorkerCrashError(ReproError):
    """Worker processes died repeatedly while executing one dispatch —
    the pool gave up respawning (a single crash is survived and retried
    transparently; see :class:`~repro.engine.pool.WorkerPool`)."""


class ServiceError(ReproError):
    """The evaluation service rejected a request or a job failed
    server-side.

    Raised client-side (:class:`~repro.service.client.ServiceClient`)
    when the daemon answers with a structured JSON error body — the
    type name and one-line message are folded into this exception's
    message.  Like every :class:`ReproError`, the CLI maps it to exit
    code 2.
    """


class ServiceUnavailable(ServiceError):
    """The evaluation service cannot take the request right now: the
    daemon is unreachable, draining for shutdown, or its job queue is
    full.  Retryable — unlike most :class:`ServiceError` causes, nothing
    is wrong with the request itself."""


class StoreLockTimeout(ReproError):
    """A shard/index file lock could not be acquired within the deadline.

    Signals a wedged or extremely slow contender holding the lock —
    surfaced as a clear error instead of blocking the sweep forever.
    """
