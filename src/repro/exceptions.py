"""Exception hierarchy for the modeling library.

All library errors derive from :class:`ReproError` so callers can install a
single ``except`` clause around model evaluation.  Subclasses partition the
failure modes a user can hit: malformed specifications, invalid mappings,
capacity violations, and calibration/lookup failures in the energy library.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SpecError(ReproError):
    """An architecture, component, or workload specification is malformed."""


class WorkloadError(SpecError):
    """A DNN layer or network definition is inconsistent (e.g. bad shapes)."""


class MappingError(ReproError):
    """A mapping is structurally invalid for its workload or architecture."""


class CapacityError(MappingError):
    """A mapping requires more storage at a level than the hardware provides."""


class EstimationError(ReproError):
    """The energy/area estimation layer could not produce an estimate."""


class CalibrationError(EstimationError):
    """A component parameter set is outside the calibrated validity range."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""
