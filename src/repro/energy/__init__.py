"""Component energy/area estimation (the Accelergy-equivalent layer).

The model prices every hardware *action* (a buffer read, a DAC conversion,
an optical modulation, a laser pulse) through a table of per-action energies
produced by plug-in *estimators*.  Each estimator knows one component family
and turns a dict of attributes (capacity, resolution, port count, scenario
parameters) into an :class:`~repro.energy.table.EnergyEntry`.

This mirrors Accelergy's architecture: component classes + attribute dicts
in, per-action energy and area out, with a registry so new device models
(e.g. a novel modulator) can be added without touching the core.

Estimator families provided:

* :mod:`~repro.energy.electrical` — SRAM, DRAM, registers, digital adders
  and multipliers, analog integrators, on-chip wires.
* :mod:`~repro.energy.converters` — ADCs and DACs with figure-of-merit
  models in the style the paper cites for converter energy/area modeling.
* :mod:`~repro.energy.photonic` — microring resonators, Mach-Zehnder
  modulators, photodiodes, star couplers, waveguides, and comb lasers with
  an explicit optical link budget.
"""

from repro.energy.estimator import (
    ComponentSpec,
    available_estimators,
    build_table,
    estimate,
    register_estimator,
)
from repro.energy.scaling import (
    AGGRESSIVE,
    CONSERVATIVE,
    MODERATE,
    SCENARIOS,
    ScalingScenario,
    scenario_by_name,
)
from repro.energy.table import EnergyEntry, EnergyTable

# Importing the estimator modules registers their plug-ins.
from repro.energy import converters as _converters  # noqa: F401
from repro.energy import electrical as _electrical  # noqa: F401
from repro.energy import photonic as _photonic  # noqa: F401

__all__ = [
    "AGGRESSIVE",
    "CONSERVATIVE",
    "MODERATE",
    "SCENARIOS",
    "ComponentSpec",
    "EnergyEntry",
    "EnergyTable",
    "ScalingScenario",
    "available_estimators",
    "build_table",
    "estimate",
    "register_estimator",
    "scenario_by_name",
]
