"""Data-converter (ADC / DAC) energy and area models.

Cross-domain converters are the central energy cost the paper analyzes, so
they get first-class figure-of-merit models in the style of the converter
survey modeling the paper cites (Andrulis et al., "Modeling analog-digital-
converter energy and area for compute-in-memory accelerator design"):

* **ADC**: energy per conversion follows the Walden figure of merit,
  ``E = FoM * 2^bits``, with a speed penalty above a corner frequency
  (high-speed converters interleave and burn extra energy in clocking and
  calibration).  Area likewise scales exponentially with resolution.
* **DAC**: charge-redistribution DACs are cheaper; energy is dominated by
  the capacitor array, which doubles per added bit but starts from a small
  unit, plus a linear driver term.  We expose a direct per-conversion energy
  parameter scaled from an 8-bit reference, because photonic systems
  universally quote DAC energy that way.

Each scaling scenario of :mod:`repro.energy.scaling` supplies the FoM values
for its technology assumptions.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.energy.estimator import register_estimator
from repro.energy.table import EnergyEntry
from repro.exceptions import CalibrationError

# Frequency corner above which ADC FoM degrades (GS/s); below it, FoM is
# roughly flat with sample rate (survey data).
_ADC_FOM_CORNER_GSPS = 1.0
# FoM degradation exponent above the corner: E ~ (fs/corner)^0.5.
_ADC_SPEED_EXPONENT = 0.5
# ADC area: ~500 um^2 per effective quantization level at 8 bits scales as
# 2^bits with a technology multiplier absorbed into area_scale.
_ADC_AREA_UM2_PER_LEVEL = 2.0

# DAC reference: an 8-bit current-steering/charge DAC at multi-GS/s.
_DAC_REFERENCE_BITS = 8
_DAC_AREA_UM2_AT_8BIT = 500.0


@register_estimator(
    "adc",
    required=("fom_fj_per_step",),
    optional=("bits", "sample_rate_gsps", "area_scale"),
    description="ADC priced by Walden FoM with high-speed penalty.",
)
def estimate_adc(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    """ADC energy per conversion: ``FoM * 2^bits * speed_penalty``.

    ``fom_fj_per_step`` is in femtojoules per conversion step; published
    designs span ~1 fJ/step (slow, aggressive nodes) to tens of fJ/step
    (multi-GS/s).  The speed penalty applies above 1 GS/s.
    """
    fom = float(attributes["fom_fj_per_step"])
    bits = int(attributes.get("bits", 8))
    rate = float(attributes.get("sample_rate_gsps", 1.0))
    area_scale = float(attributes.get("area_scale", 1.0))
    if fom <= 0:
        raise CalibrationError(f"adc {name!r}: FoM must be positive")
    if not 1 <= bits <= 16:
        raise CalibrationError(
            f"adc {name!r}: resolution {bits} outside calibrated range 1..16"
        )
    if rate <= 0:
        raise CalibrationError(f"adc {name!r}: sample rate must be positive")
    penalty = max(1.0, (rate / _ADC_FOM_CORNER_GSPS) ** _ADC_SPEED_EXPONENT)
    energy_pj = fom * (2 ** bits) * penalty / 1000.0  # fJ -> pJ
    area = _ADC_AREA_UM2_PER_LEVEL * (2 ** bits) * area_scale
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"convert": energy_pj},
        area_um2=area,
    )


@register_estimator(
    "dac",
    required=("energy_pj_at_8bit",),
    optional=("bits", "area_scale"),
    description="DAC priced from an 8-bit reference energy.",
)
def estimate_dac(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    """DAC energy per conversion.

    Scaled from the 8-bit reference as ``E(b) = E8 * 2^(b-8) * (b/8)`` —
    capacitor array doubling per bit times a linear settling/driver term.
    This matches the survey trend that DACs are several times cheaper than
    ADCs at matched resolution and rate.
    """
    reference = float(attributes["energy_pj_at_8bit"])
    bits = int(attributes.get("bits", 8))
    area_scale = float(attributes.get("area_scale", 1.0))
    if reference <= 0:
        raise CalibrationError(f"dac {name!r}: reference energy must be > 0")
    if not 1 <= bits <= 16:
        raise CalibrationError(
            f"dac {name!r}: resolution {bits} outside calibrated range 1..16"
        )
    energy = reference * (2.0 ** (bits - _DAC_REFERENCE_BITS)) * (bits / 8.0)
    area = _DAC_AREA_UM2_AT_8BIT * (2.0 ** (bits - _DAC_REFERENCE_BITS)) \
        * area_scale
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"convert": energy},
        area_um2=area,
    )


def adc_energy_pj(fom_fj_per_step: float, bits: int,
                  sample_rate_gsps: float = 1.0) -> float:
    """Convenience: ADC conversion energy without building an entry."""
    entry = estimate_adc(
        "adc",
        {"fom_fj_per_step": fom_fj_per_step, "bits": bits,
         "sample_rate_gsps": sample_rate_gsps},
    )
    return entry.energy("convert")


def dac_energy_pj(energy_pj_at_8bit: float, bits: int) -> float:
    """Convenience: DAC conversion energy without building an entry."""
    entry = estimate_dac(
        "dac", {"energy_pj_at_8bit": energy_pj_at_8bit, "bits": bits}
    )
    return entry.energy("convert")
