"""Energy tables: the priced component library an architecture evaluates with.

An :class:`EnergyEntry` records what one component costs per action (in pJ),
its area (um^2), and its static power (mW).  An :class:`EnergyTable` maps
component names to entries and is the only interface the evaluation engine
uses — it never talks to estimators directly, so tables can equally come
from the plug-in estimators, from measurement data, or from hand calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from repro.exceptions import EstimationError


@dataclass(frozen=True)
class EnergyEntry:
    """Per-action energies and physical costs of one component instance."""

    component: str
    energy_per_action_pj: Mapping[str, float]
    area_um2: float = 0.0
    static_power_mw: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "energy_per_action_pj", dict(self.energy_per_action_pj)
        )
        for action, energy in self.energy_per_action_pj.items():
            if energy < 0:
                raise EstimationError(
                    f"component {self.component!r}: action {action!r} has "
                    f"negative energy {energy}"
                )
        if self.area_um2 < 0 or self.static_power_mw < 0:
            raise EstimationError(
                f"component {self.component!r}: area and static power must "
                f"be non-negative"
            )

    def energy(self, action: str) -> float:
        """Energy in pJ for one occurrence of ``action``."""
        try:
            return self.energy_per_action_pj[action]
        except KeyError:
            raise EstimationError(
                f"component {self.component!r} has no action {action!r}; "
                f"available: {sorted(self.energy_per_action_pj)}"
            ) from None

    @property
    def actions(self) -> Iterable[str]:
        return self.energy_per_action_pj.keys()


class EnergyTable:
    """A named collection of :class:`EnergyEntry` objects."""

    def __init__(self, entries: Iterable[EnergyEntry] = ()) -> None:
        self._entries: Dict[str, EnergyEntry] = {}
        for entry in entries:
            self.add(entry)

    def add(self, entry: EnergyEntry) -> None:
        if entry.component in self._entries:
            raise EstimationError(
                f"duplicate energy entry for component {entry.component!r}"
            )
        self._entries[entry.component] = entry

    def replace(self, entry: EnergyEntry) -> None:
        """Add or overwrite the entry for ``entry.component``."""
        self._entries[entry.component] = entry

    def __contains__(self, component: str) -> bool:
        return component in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    def entry(self, component: str) -> EnergyEntry:
        try:
            return self._entries[component]
        except KeyError:
            raise EstimationError(
                f"no energy entry for component {component!r}; known "
                f"components: {sorted(self._entries)}"
            ) from None

    def energy(self, component: str, action: str) -> float:
        """Energy in pJ for one ``action`` of ``component``."""
        return self.entry(component).energy(action)

    def area(self, component: str) -> float:
        return self.entry(component).area_um2

    def total_area_um2(self, counts: Mapping[str, float]) -> float:
        """Total area given instance counts per component."""
        return sum(
            self.entry(component).area_um2 * count
            for component, count in counts.items()
        )

    def describe(self) -> str:
        """Aligned multi-line rendering of the table."""
        lines = [f"{'component':24s} {'action':12s} {'energy':>12s} "
                 f"{'area um^2':>10s}"]
        for entry in sorted(self._entries.values(), key=lambda e: e.component):
            for action, energy in sorted(entry.energy_per_action_pj.items()):
                lines.append(
                    f"{entry.component:24s} {action:12s} {energy:12.6f} "
                    f"{entry.area_um2:10.1f}"
                )
        return "\n".join(lines)
