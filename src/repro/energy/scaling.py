"""Optical device scaling scenarios.

The Albireo paper (and following it, the ISPASS'24 modeling paper's Fig. 2)
evaluates photonic accelerators under three projections for optical device
energy — conservative (today's demonstrated devices), moderate, and
aggressive (projected future devices).  Electrical memory energy does not
participate in the optical scaling story, so SRAM/DRAM parameters are shared
across scenarios.

Each :class:`ScalingScenario` bundles the per-device parameters the
estimators in :mod:`repro.energy.photonic` and
:mod:`repro.energy.converters` consume.  The values below reproduce the
per-MAC component breakdown of the paper's Fig. 2 through the full model
pipeline; see ``repro/experiments/reported.py`` for the corresponding
transcribed paper values and the calibration notes in ``EXPERIMENTS.md``.

Representative physical anchors:

* 8-bit DACs at multi-GS/s: ~0.1–1 pJ/conversion across projections.
* 8-bit ADCs at 5 GS/s: Walden FoM ~16 fJ/step (conservative, ~4 pJ/conv)
  down to ~2 fJ/step (aggressive, ~0.5 pJ/conv).
* MZM drive: several pJ/symbol today; hundreds of fJ projected.
* MRR drive incl. tuning: ~0.6 pJ/symbol today; ~0.1 pJ projected.
* Detector optical energy per symbol: ~15 fJ (conservative sensitivity)
  down to ~5 fJ; laser wall-plug efficiency 10–20%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.exceptions import CalibrationError


@dataclass(frozen=True)
class ScalingScenario:
    """One optical-device technology projection."""

    name: str
    #: Mach-Zehnder modulator drive energy per symbol (pJ).
    mzm_pj: float
    #: Microring drive + amortized tuning energy per symbol (pJ).
    mrr_drive_pj: float
    #: Photodiode + TIA energy per integration window (pJ).
    photodiode_pj: float
    #: DAC energy per 8-bit conversion (pJ).
    dac_pj_at_8bit: float
    #: ADC Walden figure of merit (fJ per conversion step).
    adc_fom_fj_per_step: float
    #: Optical energy a detector needs per symbol (fJ).
    detector_fj: float
    #: Laser wall-plug efficiency (fraction).
    laser_wall_plug_efficiency: float
    #: Fixed optical insertion losses along the link (dB): modulator,
    #: ring through-loss, coupling, waveguide propagation.
    fixed_loss_db: float

    def __post_init__(self) -> None:
        positive_fields = (
            "mzm_pj", "mrr_drive_pj", "photodiode_pj", "dac_pj_at_8bit",
            "adc_fom_fj_per_step", "detector_fj",
        )
        for field_name in positive_fields:
            if getattr(self, field_name) <= 0:
                raise CalibrationError(
                    f"scenario {self.name!r}: {field_name} must be positive"
                )
        if not 0 < self.laser_wall_plug_efficiency <= 1:
            raise CalibrationError(
                f"scenario {self.name!r}: wall-plug efficiency must be in "
                f"(0, 1]"
            )
        if self.fixed_loss_db < 0:
            raise CalibrationError(
                f"scenario {self.name!r}: fixed loss must be >= 0 dB"
            )


#: Today's demonstrated devices.
CONSERVATIVE = ScalingScenario(
    name="conservative",
    mzm_pj=4.0,
    mrr_drive_pj=0.60,
    photodiode_pj=0.90,
    dac_pj_at_8bit=0.80,
    # Calibrated so an 8-bit conversion at the 5 GS/s symbol rate (including
    # the estimator's high-speed penalty) costs 4.0 pJ.
    adc_fom_fj_per_step=6.9877,
    detector_fj=15.0,
    laser_wall_plug_efficiency=0.10,
    fixed_loss_db=6.0,
)

#: Mid-term projection.
MODERATE = ScalingScenario(
    name="moderate",
    mzm_pj=1.2,
    mrr_drive_pj=0.25,
    photodiode_pj=0.35,
    dac_pj_at_8bit=0.32,
    # 8-bit @ 5 GS/s -> 1.6 pJ/conversion.
    adc_fom_fj_per_step=2.7951,
    detector_fj=12.0,
    laser_wall_plug_efficiency=0.15,
    fixed_loss_db=5.0,
)

#: Aggressive future-device projection.
AGGRESSIVE = ScalingScenario(
    name="aggressive",
    mzm_pj=0.30,
    mrr_drive_pj=0.08,
    photodiode_pj=0.12,
    dac_pj_at_8bit=0.10,
    # 8-bit @ 5 GS/s -> 0.5 pJ/conversion.
    adc_fom_fj_per_step=0.87346,
    detector_fj=5.5,
    laser_wall_plug_efficiency=0.20,
    fixed_loss_db=4.0,
)

SCENARIOS: Tuple[ScalingScenario, ...] = (CONSERVATIVE, MODERATE, AGGRESSIVE)

_BY_NAME: Dict[str, ScalingScenario] = {s.name: s for s in SCENARIOS}


def scenario_by_name(name: str) -> ScalingScenario:
    """Look up a scenario by its lowercase name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise CalibrationError(
            f"unknown scaling scenario {name!r}; options: {sorted(_BY_NAME)}"
        ) from None
