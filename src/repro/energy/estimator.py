"""Estimator plug-in registry (the Accelergy plug-in mechanism).

An *estimator* is a function that maps a component attribute dict to an
:class:`~repro.energy.table.EnergyEntry`.  Estimators register under a
*component class* name (``"sram"``, ``"adc"``, ``"mzm"``, ...); architecture
builders then declare :class:`ComponentSpec` instances — (instance name,
component class, attributes) — and :func:`build_table` resolves them into a
priced :class:`~repro.energy.table.EnergyTable`.

Attribute handling follows Accelergy's contract: estimators declare the
attributes they understand with defaults; unknown attributes are rejected
loudly (silent typos in attribute names are the classic way to get a wrong
model), and missing required attributes raise with the list of what is
required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Tuple

from repro.energy.table import EnergyEntry, EnergyTable
from repro.exceptions import EstimationError

#: An estimator takes (instance name, attributes) and returns a priced entry.
EstimatorFn = Callable[[str, Mapping[str, Any]], EnergyEntry]

_REGISTRY: Dict[str, "_RegisteredEstimator"] = {}


@dataclass(frozen=True)
class _RegisteredEstimator:
    component_class: str
    function: EstimatorFn
    required: Tuple[str, ...]
    optional: Tuple[str, ...]
    description: str


def register_estimator(
    component_class: str,
    required: Iterable[str] = (),
    optional: Iterable[str] = (),
    description: str = "",
) -> Callable[[EstimatorFn], EstimatorFn]:
    """Class decorator/registrar for estimator functions.

    ``required`` and ``optional`` list the attribute names the estimator
    accepts; anything else in a spec's attribute dict is an error.
    """

    def decorator(function: EstimatorFn) -> EstimatorFn:
        if component_class in _REGISTRY:
            raise EstimationError(
                f"estimator for component class {component_class!r} is "
                f"already registered"
            )
        _REGISTRY[component_class] = _RegisteredEstimator(
            component_class=component_class,
            function=function,
            required=tuple(required),
            optional=tuple(optional),
            description=description or (function.__doc__ or "").strip(),
        )
        return function

    return decorator


def available_estimators() -> Dict[str, str]:
    """Mapping of registered component classes to their descriptions."""
    return {
        name: registered.description
        for name, registered in sorted(_REGISTRY.items())
    }


def estimate(
    component_class: str,
    name: str,
    attributes: Optional[Mapping[str, Any]] = None,
) -> EnergyEntry:
    """Run the estimator for ``component_class`` on ``attributes``."""
    attributes = dict(attributes or {})
    try:
        registered = _REGISTRY[component_class]
    except KeyError:
        raise EstimationError(
            f"no estimator registered for component class "
            f"{component_class!r}; available: {sorted(_REGISTRY)}"
        ) from None
    allowed = set(registered.required) | set(registered.optional)
    unknown = set(attributes) - allowed
    if unknown:
        raise EstimationError(
            f"component {name!r} (class {component_class!r}): unknown "
            f"attributes {sorted(unknown)}; allowed: {sorted(allowed)}"
        )
    missing = set(registered.required) - set(attributes)
    if missing:
        raise EstimationError(
            f"component {name!r} (class {component_class!r}): missing "
            f"required attributes {sorted(missing)}"
        )
    return registered.function(name, attributes)


@dataclass(frozen=True)
class ComponentSpec:
    """Declaration of one component instance to be priced.

    ``name`` is the instance name the architecture references; ``component
    class`` selects the estimator; ``attributes`` parameterize it.
    """

    name: str
    component_class: str
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", dict(self.attributes))


def build_table(specs: Iterable[ComponentSpec]) -> EnergyTable:
    """Price a set of component specs into an :class:`EnergyTable`."""
    table = EnergyTable()
    for spec in specs:
        table.add(estimate(spec.component_class, spec.name, spec.attributes))
    return table
