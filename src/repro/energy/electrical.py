"""Electrical (DE and AE domain) component estimators.

Models are deliberately analytical — closed-form fits of the kind Accelergy's
table and CACTI plug-ins provide — with every constant documented inline.
Absolute numbers are standard architecture-community values; the model's
purpose is faithful *relative* behaviour (how energy scales with capacity,
width, and technology), which is what the paper's conclusions rest on.

All energies are per action in pJ; areas in um^2; static power in mW.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.energy.estimator import register_estimator
from repro.energy.table import EnergyEntry
from repro.exceptions import CalibrationError

# ---------------------------------------------------------------------------
# SRAM
# ---------------------------------------------------------------------------
# Reference point: a 64 KiB, 64-bit-wide SRAM macro in a ~22-28 nm process
# reads at roughly 6 fJ/bit.  Energy per bit grows with the square root of
# capacity (bitline/wordline lengths grow with sqrt of the array), the
# canonical CACTI scaling.  Writes cost slightly more than reads (full bitline
# swing).  Area: ~0.35 um^2/bit including periphery at this node.
_SRAM_REFERENCE_CAPACITY_BITS = 64 * 1024 * 8
_SRAM_REFERENCE_READ_PJ_PER_BIT = 0.006
_SRAM_WRITE_OVER_READ = 1.15
_SRAM_AREA_UM2_PER_BIT = 0.35
_SRAM_LEAKAGE_MW_PER_MBIT = 1.0
# Banked SRAMs still pay a global H-tree/wiring term that grows with total
# macro size even when per-bank energy is constant: +8% per capacity
# doubling beyond 1 MiB.
_SRAM_HTREE_REFERENCE_BITS = 1024 * 1024 * 8
_SRAM_HTREE_PER_DOUBLING = 0.08


@register_estimator(
    "sram",
    required=("capacity_bits",),
    optional=("width_bits", "energy_scale", "banks"),
    description="On-chip SRAM buffer with sqrt-capacity energy scaling.",
)
def estimate_sram(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    """SRAM read/write energy per *element* access of ``width_bits`` bits.

    ``energy_scale`` is an overall multiplier for calibration studies.
    ``banks`` splits the capacity into independent banks, each priced at its
    own (smaller) capacity — how real global buffers keep per-access energy
    down.
    """
    capacity_bits = float(attributes["capacity_bits"])
    width_bits = int(attributes.get("width_bits", 8))
    energy_scale = float(attributes.get("energy_scale", 1.0))
    banks = int(attributes.get("banks", 1))
    if capacity_bits <= 0:
        raise CalibrationError(f"sram {name!r}: capacity must be positive")
    if banks < 1:
        raise CalibrationError(f"sram {name!r}: banks must be >= 1")
    bank_bits = capacity_bits / banks
    scale = math.sqrt(bank_bits / _SRAM_REFERENCE_CAPACITY_BITS)
    htree = 1.0 + _SRAM_HTREE_PER_DOUBLING * max(
        0.0, math.log2(capacity_bits / _SRAM_HTREE_REFERENCE_BITS))
    read_per_bit = (_SRAM_REFERENCE_READ_PJ_PER_BIT * scale * htree
                    * energy_scale)
    read = read_per_bit * width_bits
    write = read * _SRAM_WRITE_OVER_READ
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"read": read, "write": write, "update": write},
        area_um2=capacity_bits * _SRAM_AREA_UM2_PER_BIT,
        static_power_mw=capacity_bits / (1024 * 1024)
        * _SRAM_LEAKAGE_MW_PER_MBIT,
    )


# ---------------------------------------------------------------------------
# DRAM
# ---------------------------------------------------------------------------
# System-level (controller + PHY + device) energy per bit for common DRAM
# technologies.  These are the round numbers used across the accelerator-
# evaluation literature; DDR4 ~16 pJ/b, LPDDR4 ~6 pJ/b, HBM2 ~4 pJ/b.
_DRAM_TECHNOLOGIES = {
    "ddr4": {"pj_per_bit": 16.0, "bandwidth_gbps": 25.6 * 8},
    "lpddr4": {"pj_per_bit": 6.0, "bandwidth_gbps": 17.0 * 8},
    "hbm2": {"pj_per_bit": 4.0, "bandwidth_gbps": 256.0 * 8},
}


@register_estimator(
    "dram",
    optional=("technology", "width_bits", "pj_per_bit"),
    description="Off-chip DRAM priced per bit at system level.",
)
def estimate_dram(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    """DRAM access energy per element of ``width_bits`` bits.

    ``technology`` selects a preset; ``pj_per_bit`` overrides it directly.
    """
    technology = str(attributes.get("technology", "ddr4")).lower()
    width_bits = int(attributes.get("width_bits", 8))
    if technology not in _DRAM_TECHNOLOGIES:
        raise CalibrationError(
            f"dram {name!r}: unknown technology {technology!r}; options: "
            f"{sorted(_DRAM_TECHNOLOGIES)}"
        )
    pj_per_bit = float(
        attributes.get("pj_per_bit",
                       _DRAM_TECHNOLOGIES[technology]["pj_per_bit"])
    )
    energy = pj_per_bit * width_bits
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"read": energy, "write": energy,
                              "update": energy},
        area_um2=0.0,  # off-chip
        static_power_mw=0.0,
    )


# ---------------------------------------------------------------------------
# Registers and small digital logic
# ---------------------------------------------------------------------------
# Flip-flop based register: ~1.5 fJ/bit per access at ~22-28 nm.
_REGISTER_PJ_PER_BIT = 0.0015
_REGISTER_AREA_UM2_PER_BIT = 1.5


@register_estimator(
    "register",
    optional=("width_bits",),
    description="Flip-flop register file entry.",
)
def estimate_register(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    width_bits = int(attributes.get("width_bits", 8))
    energy = _REGISTER_PJ_PER_BIT * width_bits
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"read": energy, "write": energy,
                              "update": energy},
        area_um2=_REGISTER_AREA_UM2_PER_BIT * width_bits,
    )


# Static-CMOS ripple adder: ~3 fJ for 8-bit at ~22-28 nm, linear in width.
_ADDER_PJ_PER_BIT = 0.0004
_ADDER_AREA_UM2_PER_BIT = 3.0


@register_estimator(
    "adder",
    optional=("width_bits",),
    description="Digital adder.",
)
def estimate_adder(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    width_bits = int(attributes.get("width_bits", 8))
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"compute": _ADDER_PJ_PER_BIT * width_bits,
                              "update": _ADDER_PJ_PER_BIT * width_bits},
        area_um2=_ADDER_AREA_UM2_PER_BIT * width_bits,
    )


# Array multiplier energy grows quadratically with width; ~0.2 pJ for 8x8
# at ~22-28 nm.
_MULTIPLIER_PJ_AT_8BIT = 0.2
_MULTIPLIER_AREA_UM2_AT_8BIT = 300.0


@register_estimator(
    "multiplier",
    optional=("width_bits",),
    description="Digital multiplier (quadratic width scaling).",
)
def estimate_multiplier(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    width_bits = int(attributes.get("width_bits", 8))
    quad = (width_bits / 8.0) ** 2
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"compute": _MULTIPLIER_PJ_AT_8BIT * quad},
        area_um2=_MULTIPLIER_AREA_UM2_AT_8BIT * quad,
    )


# ---------------------------------------------------------------------------
# Analog-electrical accumulation (AE-domain integrator)
# ---------------------------------------------------------------------------
# Charge-domain accumulation onto a capacitor: each update deposits charge;
# cost is dominated by the switch drivers, a few fJ per update.  This is the
# AE temporal-accumulation element that lets photonic front-ends amortize
# their ADCs (more partial sums per conversion).
_INTEGRATOR_PJ_PER_UPDATE = 0.008
_INTEGRATOR_AREA_UM2 = 40.0


@register_estimator(
    "analog_integrator",
    optional=("energy_scale",),
    description="AE charge-domain accumulator (capacitive integrator).",
)
def estimate_analog_integrator(
    name: str, attributes: Mapping[str, Any]
) -> EnergyEntry:
    scale = float(attributes.get("energy_scale", 1.0))
    energy = _INTEGRATOR_PJ_PER_UPDATE * scale
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"read": energy, "write": energy,
                              "update": energy},
        area_um2=_INTEGRATOR_AREA_UM2,
    )


# ---------------------------------------------------------------------------
# Constant / passive components
# ---------------------------------------------------------------------------


@register_estimator(
    "constant",
    optional=("energy_pj", "actions", "area_um2", "static_power_mw"),
    description="Fixed per-action energy (calibration overrides, passives).",
)
def estimate_constant(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    """A component with the same fixed energy for every listed action.

    Useful for passive elements (a photonic multiply whose cost is already
    carried by its modulators and laser) and for overriding a component with
    measured data.
    """
    energy = float(attributes.get("energy_pj", 0.0))
    actions = tuple(attributes.get(
        "actions", ("compute", "read", "write", "update", "convert")))
    if energy < 0:
        raise CalibrationError(f"constant {name!r}: energy must be >= 0")
    return EnergyEntry(
        component=name,
        energy_per_action_pj={action: energy for action in actions},
        area_um2=float(attributes.get("area_um2", 0.0)),
        static_power_mw=float(attributes.get("static_power_mw", 0.0)),
    )


# ---------------------------------------------------------------------------
# On-chip interconnect
# ---------------------------------------------------------------------------
# Repeated global wire at ~22-28 nm: ~60 fJ/bit/mm.
_WIRE_PJ_PER_BIT_MM = 0.06


@register_estimator(
    "wire",
    required=("length_mm",),
    optional=("width_bits",),
    description="Repeated on-chip wire priced per traversal.",
)
def estimate_wire(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    length_mm = float(attributes["length_mm"])
    width_bits = int(attributes.get("width_bits", 8))
    if length_mm < 0:
        raise CalibrationError(f"wire {name!r}: length must be >= 0")
    energy = _WIRE_PJ_PER_BIT_MM * length_mm * width_bits
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"transfer": energy, "read": energy,
                              "write": energy},
        area_um2=0.0,
    )
