"""Photonic (AO domain) component estimators.

Models the optical component set the paper adds to the CiM component
library: microring resonators (MRRs), Mach-Zehnder modulators (MZMs),
photodiodes (+TIA), star couplers, waveguides, and the (off-chip comb)
laser.  Two modeling conventions matter:

1. **Active electro-optic events are priced per symbol.**  Driving a ring or
   an MZM costs ``C*V^2``-class electrical energy each symbol plus amortized
   thermal tuning; receiving costs photodiode + TIA energy per integration
   window.  Scenario parameters (see :mod:`repro.energy.scaling`) set the
   per-symbol numbers for conservative / moderate / aggressive device
   projections, mirroring the scaling studies in the Albireo paper.

2. **The laser is priced through an explicit link budget.**  A detector
   needs a minimum optical energy per symbol to resolve 8-bit levels; the
   laser must supply that energy times every loss between source and
   detector, divided by its wall-plug efficiency.  Splitting loss of an
   N-port broadcast star coupler is *not* charged — each of the N branches
   performs useful work, so per-MAC laser energy is split-neutral — but the
   coupler's *excess* loss (scattering, imbalance) grows with port count and
   is charged.  This makes "increase the broadcast factor" a real
   engineering trade-off instead of a free lunch, which is the physical
   counter-pressure in the paper's Fig. 5 exploration.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.energy.estimator import register_estimator
from repro.energy.table import EnergyEntry
from repro.exceptions import CalibrationError
from repro.units import db_to_linear

# Geometry: a thermally tuned microring with driver occupies ~200 um^2; an
# MZM is centimeters-per-meter scale folded into ~20000 um^2; a photodiode
# with TIA ~400 um^2.
_MRR_AREA_UM2 = 200.0
_MZM_AREA_UM2 = 20000.0
_PHOTODIODE_AREA_UM2 = 400.0
# Star coupler area grows with port count (free propagation region).
_STAR_COUPLER_AREA_UM2_PER_PORT = 250.0

#: Extra electrical drive energy per additional ring sharing one drive line
#: (longer line, more ring loading) as a fraction of the base energy.
SHARED_DRIVE_OVERHEAD_PER_LANE = 0.15

#: Excess (non-splitting) loss contributed by each 2x2 stage equivalent of a
#: star coupler; 0.5 dB/stage is typical of silicon-photonic couplers.
COUPLER_EXCESS_DB_PER_STAGE = 0.5


@register_estimator(
    "mrr",
    required=("energy_pj",),
    optional=("shared_lanes", "tuning_mw"),
    description="Microring resonator modulation (weight imprint) per symbol.",
)
def estimate_mrr(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    """Microring drive energy per modulation event.

    ``energy_pj`` is the per-symbol drive + amortized tuning energy for one
    ring.  ``shared_lanes`` > 1 models one drive line biasing several rings
    in parallel waveguide lanes: the *event* then covers all lanes, with a
    capacitance overhead of ``SHARED_DRIVE_OVERHEAD_PER_LANE`` per extra
    ring (the per-MAC energy still drops because one event now feeds
    ``shared_lanes`` MACs).
    """
    base = float(attributes["energy_pj"])
    shared = int(attributes.get("shared_lanes", 1))
    tuning_mw = float(attributes.get("tuning_mw", 0.0))
    if base < 0:
        raise CalibrationError(f"mrr {name!r}: energy must be >= 0")
    if shared < 1:
        raise CalibrationError(f"mrr {name!r}: shared_lanes must be >= 1")
    overhead = 1.0 + SHARED_DRIVE_OVERHEAD_PER_LANE * (shared - 1)
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"convert": base * overhead},
        area_um2=_MRR_AREA_UM2 * shared,
        static_power_mw=tuning_mw * shared,
    )


@register_estimator(
    "mzm",
    required=("energy_pj",),
    optional=(),
    description="Mach-Zehnder modulator (input launch) per symbol.",
)
def estimate_mzm(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    energy = float(attributes["energy_pj"])
    if energy < 0:
        raise CalibrationError(f"mzm {name!r}: energy must be >= 0")
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"convert": energy},
        area_um2=_MZM_AREA_UM2,
    )


@register_estimator(
    "photodiode",
    required=("energy_pj",),
    optional=(),
    description="Photodiode + TIA receive per integration window.",
)
def estimate_photodiode(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    energy = float(attributes["energy_pj"])
    if energy < 0:
        raise CalibrationError(f"photodiode {name!r}: energy must be >= 0")
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"convert": energy},
        area_um2=_PHOTODIODE_AREA_UM2,
    )


@register_estimator(
    "star_coupler",
    required=("ports",),
    optional=(),
    description="Passive NxN broadcast star coupler (area + loss only).",
)
def estimate_star_coupler(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    ports = int(attributes["ports"])
    if ports < 1:
        raise CalibrationError(f"star coupler {name!r}: ports must be >= 1")
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"transfer": 0.0},
        area_um2=_STAR_COUPLER_AREA_UM2_PER_PORT * ports,
    )


@register_estimator(
    "waveguide",
    required=("length_mm",),
    optional=("loss_db_per_mm",),
    description="Passive waveguide (area + loss only).",
)
def estimate_waveguide(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    length_mm = float(attributes["length_mm"])
    if length_mm < 0:
        raise CalibrationError(f"waveguide {name!r}: length must be >= 0")
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"transfer": 0.0},
        # ~10 um pitch routing channel.
        area_um2=length_mm * 1000.0 * 10.0,
    )


@register_estimator(
    "soa",
    required=("gain_db", "bias_mw"),
    optional=("symbol_rate_gsps",),
    description="Semiconductor optical amplifier (gain stage).",
)
def estimate_soa(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    """Semiconductor optical amplifier: loss compensation inside a link.

    SOAs are biased continuously; the per-symbol energy is the bias power
    amortized over the symbol rate.  Used by deeper photonic topologies
    (cascaded couplers) where the link budget exceeds what laser power
    alone can close.
    """
    gain_db = float(attributes["gain_db"])
    bias_mw = float(attributes["bias_mw"])
    rate = float(attributes.get("symbol_rate_gsps", 5.0))
    if gain_db < 0:
        raise CalibrationError(f"soa {name!r}: gain must be >= 0 dB")
    if bias_mw <= 0 or rate <= 0:
        raise CalibrationError(f"soa {name!r}: bias and rate must be > 0")
    # mW / (Gsymbols/s) = pJ/symbol in this unit system.
    energy_per_symbol = bias_mw / rate
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"transfer": energy_per_symbol,
                              "convert": energy_per_symbol},
        area_um2=500.0,
        static_power_mw=bias_mw,
    )


@register_estimator(
    "thermal_tuner",
    required=("power_mw",),
    optional=("symbol_rate_gsps",),
    description="Microring thermal tuning (resonance lock) heater.",
)
def estimate_thermal_tuner(name: str,
                           attributes: Mapping[str, Any]) -> EnergyEntry:
    """Per-ring thermal tuning, separated from the drive estimator.

    Rings drift with temperature and fabrication; each carries a heater
    whose power holds it on resonance.  Exposed standalone so studies can
    sweep tuning budgets (athermal designs vs active lock) independently
    of modulation energy.
    """
    power_mw = float(attributes["power_mw"])
    rate = float(attributes.get("symbol_rate_gsps", 5.0))
    if power_mw < 0 or rate <= 0:
        raise CalibrationError(
            f"thermal tuner {name!r}: power >= 0 and rate > 0 required")
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"hold": power_mw / rate,
                              "convert": power_mw / rate},
        area_um2=25.0,
        static_power_mw=power_mw,
    )


@register_estimator(
    "microcomb",
    required=("lines", "line_power_mw", "conversion_efficiency"),
    optional=("symbol_rate_gsps",),
    description="Kerr microcomb multi-wavelength source.",
)
def estimate_microcomb(name: str,
                       attributes: Mapping[str, Any]) -> EnergyEntry:
    """A Kerr soliton microcomb: one pump, many WDM carrier lines.

    The alternative to banks of discrete lasers in WDM accelerators
    (Albireo's source of choice).  Pump power = lines x per-line power /
    comb conversion efficiency; the per-symbol energy is the pump
    amortized over the symbol rate, to be divided by the MACs each symbol
    feeds (the caller's multicast structure).
    """
    lines = int(attributes["lines"])
    line_power_mw = float(attributes["line_power_mw"])
    efficiency = float(attributes["conversion_efficiency"])
    rate = float(attributes.get("symbol_rate_gsps", 5.0))
    if lines < 1:
        raise CalibrationError(f"microcomb {name!r}: lines must be >= 1")
    if line_power_mw <= 0 or rate <= 0:
        raise CalibrationError(
            f"microcomb {name!r}: powers and rate must be > 0")
    if not 0 < efficiency <= 1:
        raise CalibrationError(
            f"microcomb {name!r}: conversion efficiency in (0, 1]")
    pump_mw = lines * line_power_mw / efficiency
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"mac": pump_mw / rate,
                              "compute": pump_mw / rate},
        area_um2=1000.0,
        static_power_mw=pump_mw,
    )


@register_estimator(
    "optical_link",
    required=("energy_pj_per_bit",),
    optional=("width_bits",),
    description="Digital-optical (DO) link endpoint priced per bit.",
)
def estimate_optical_link(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    """One endpoint of a digital-optical link (transmitter or receiver).

    DO links carry digital data on light — the domain the paper notes TPU
    v4-class systems use for interconnect.  An endpoint (serializer +
    modulator, or photodetector + clock recovery) costs
    ``energy_pj_per_bit`` for every bit crossing it; a conversion event
    covers one ``width_bits`` element.  Co-packaged optics today land
    around 1-3 pJ/bit for a full link.
    """
    per_bit = float(attributes["energy_pj_per_bit"])
    width_bits = int(attributes.get("width_bits", 8))
    if per_bit < 0:
        raise CalibrationError(f"optical link {name!r}: energy must be >= 0")
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"convert": per_bit * width_bits,
                              "transfer": per_bit * width_bits},
        area_um2=_MZM_AREA_UM2 / 4.0,  # ring-based transceiver macro
    )


def coupler_excess_loss_db(
    ports: int,
    excess_db_per_stage: float = COUPLER_EXCESS_DB_PER_STAGE,
) -> float:
    """Excess (non-splitting) loss of an N-port broadcast coupler in dB.

    Modeled as ``excess/stage * log2(ports)`` — the cascade-equivalent depth
    of the coupler.  A 1-port "coupler" is a wire: zero excess loss.
    """
    if ports < 1:
        raise CalibrationError(f"coupler ports must be >= 1, got {ports}")
    if ports == 1:
        return 0.0
    return excess_db_per_stage * math.log2(ports)


def link_loss_db(
    fixed_loss_db: float,
    broadcast_ports: int,
    excess_db_per_stage: float = COUPLER_EXCESS_DB_PER_STAGE,
) -> float:
    """Total charged optical loss: fixed insertion losses + coupler excess.

    ``fixed_loss_db`` collects modulator insertion loss, ring through-loss,
    fiber/chip coupling, and waveguide propagation for the scenario.  The
    1:N splitting term is deliberately absent (see module docstring).
    """
    return fixed_loss_db + coupler_excess_loss_db(
        broadcast_ports, excess_db_per_stage
    )


@register_estimator(
    "laser",
    required=("detector_fj", "wall_plug_efficiency", "fixed_loss_db"),
    optional=("broadcast_ports", "excess_db_per_stage"),
    description="Comb laser priced per MAC through an optical link budget.",
)
def estimate_laser(name: str, attributes: Mapping[str, Any]) -> EnergyEntry:
    """Laser wall-plug energy per MAC.

    ``detector_fj`` is the optical energy one detector needs per symbol to
    resolve the symbol at the modeled precision; every MAC ultimately
    requires one detected symbol's worth of photons, so

    ``E_mac = detector_fj * 10^(loss_db/10) / wall_plug_efficiency``.
    """
    detector_fj = float(attributes["detector_fj"])
    efficiency = float(attributes["wall_plug_efficiency"])
    fixed_loss_db = float(attributes["fixed_loss_db"])
    ports = int(attributes.get("broadcast_ports", 1))
    per_stage = float(
        attributes.get("excess_db_per_stage", COUPLER_EXCESS_DB_PER_STAGE)
    )
    if detector_fj <= 0:
        raise CalibrationError(f"laser {name!r}: detector energy must be > 0")
    if not 0 < efficiency <= 1:
        raise CalibrationError(
            f"laser {name!r}: wall-plug efficiency must be in (0, 1], got "
            f"{efficiency}"
        )
    loss_db = link_loss_db(fixed_loss_db, ports, per_stage)
    energy_pj = detector_fj * db_to_linear(loss_db) / efficiency / 1000.0
    return EnergyEntry(
        component=name,
        energy_per_action_pj={"compute": energy_pj, "mac": energy_pj},
        area_um2=0.0,  # off-chip source
    )
