"""Setuptools shim.

Kept alongside pyproject.toml so the package installs in environments whose
setuptools predates bundled wheel support (legacy ``pip install -e .`` /
``python setup.py develop`` path).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
