"""The declarative Study API, end to end.

One Study composes systems x networks x scenarios x config-grid
overrides, runs through the parallel/cached sweep engine, and returns a
ResultSet to slice, rank, and export — no per-experiment driver code.

Run with ``PYTHONPATH=src python examples/study_api.py``.
"""

from repro import Study

# Every registered photonic system, two device-scaling projections, and
# two global-buffer sizes, evaluated on a small CNN.  Nothing executes
# until .run(); add workers=/cache= to parallelize and memoize.
study = (Study("buffer-exploration")
         .systems("albireo", "crossbar", "wdm_delay")
         .networks("tiny")
         .scenarios("conservative", "aggressive")
         .grid(global_buffer_kib=(512, 1024)))

results = study.run()

print(results.report(mark_pareto=True,
                     title="All systems, all scenarios"))
print()

# Slice like a tiny dataframe: filter by tags, group, rank.
aggressive = results.filter(scenario="aggressive")
print("Best aggressive-scenario point per system:")
for system, group in aggressive.group_by("system").items():
    best = group.best("energy_per_mac_pj")
    print(f"  {system:10s} {best['energy_per_mac_pj']:.4f} pJ/MAC "
          f"(GB={best['global_buffer_kib']} KiB)")
print()

# The energy-vs-latency Pareto frontier across everything.
frontier = results.pareto("energy_per_mac_pj", "latency_ns")
print(f"{len(frontier)} Pareto-optimal points of {len(results)}")

# Export for downstream tooling (plotting, dashboards, diffing).
rows = results.to_records()
print(f"first record keys: {sorted(rows[0])[:6]} ...")

# The same study, as data — `repro run examples/study_spec.json` executes
# the JSON-file twin of this script.
spec_study = Study.from_dict({
    "name": "buffer-exploration",
    "systems": ["albireo", "crossbar", "wdm_delay"],
    "networks": ["tiny"],
    "scenarios": ["conservative", "aggressive"],
    "grid": {"global_buffer_kib": [512, 1024]},
})
assert len(spec_study.compile()) == len(results)
print("spec twin compiles to the same lattice")
