"""The evaluation service, end to end: daemon, client, streaming.

A :class:`~repro.service.ReproService` owns one warm worker pool and one
shared cache for its lifetime; clients submit study specs and stream
results back as each point completes.  This example runs the daemon
in-process on an ephemeral port (production would be ``repro serve
--cache DIR --workers N`` in its own process), then drives it with the
stdlib-only :class:`~repro.service.ServiceClient`.

Run with ``PYTHONPATH=src python examples/service_client.py``.
"""

import threading

from repro import Study
from repro.service import ReproService, ServiceClient, make_server

# -- the daemon side (one per machine; `repro serve` in production) ----
service = ReproService(cache=None, workers=1)   # cache="runs/cache" to persist
httpd = make_server(service)                    # port 0 -> ephemeral
threading.Thread(target=httpd.serve_forever, daemon=True).start()
print(f"daemon listening on {httpd.url}")

# -- the client side (any number, anywhere on the network) -------------
client = ServiceClient(httpd.url)
print(f"health: {client.health()['status']}")

# A submission is *data* — the same spec format `repro run` takes.
# (Fluent studies built from config/network objects have no wire form;
# Study.from_dict/from_json ones serialize via .to_dict().)
study = Study.from_dict({
    "name": "service-demo",
    "systems": ["albireo", "crossbar"],
    "networks": ["tiny"],
    "scenarios": ["conservative"],
    "grid": {"global_buffer_kib": [512, 1024]},
})

# submit() returns immediately; records() then streams each completed
# point as NDJSON over a chunked HTTP response — no polling.
handle = client.submit(study)
print(f"submitted {handle.id}; streaming records as they complete:")
for record in handle.records():
    print(f"  {record.tags['system']:10s} GB={record['global_buffer_kib']} "
          f"KiB -> {record['energy_per_mac_pj']:.4f} pJ/MAC")

# Streamed results are bit-identical to running the study locally.
assert handle.status()["status"] == "done"
local = study.run()
assert client.handle(handle.id).result() == local
print("streamed result set == local Study.run(): bit-identical")

# Submitting the same study again hits the daemon's shared cache: the
# stats endpoint shows every point served warm, zero new evaluations.
cold = client.stats()["cache"]["results"]
client.submit(study).result()
warm = client.stats()["cache"]["results"]
print(f"warm resubmit: misses {cold['misses']} -> {warm['misses']} "
      f"(unchanged), hits +{warm['hits'] - cold['hits']}")
assert warm["misses"] == cold["misses"]

httpd.shutdown()
service.close()
print("daemon drained and closed")
