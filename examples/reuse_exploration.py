#!/usr/bin/env python3
"""Architecture exploration: spend wiring, save converters.

Reproduces the paper's Fig. 5 narrative: cross-domain data converters
(DACs, modulators, photodiodes, ADCs) dominate photonic accelerator energy,
and the cure is *spatial reuse* — convert a value once and fan it out:

* IR (input reuse): star-coupler broadcast width — one modulated input
  feeds more multiply sites;
* OR (output reuse): analog summation fan-in — more partials merge before
  each ADC conversion;
* WR (weight reuse): one DAC'd weight drives rings in several parallel
  pixel lanes (the "More Weight Reuse" multiply-block variant).

Run:  python examples/reuse_exploration.py
"""

from repro import AGGRESSIVE, AlbireoConfig, SYSTEM_BUCKETS, resnet18
from repro.api import reuse_study
from repro.report import format_table

CONVERTER_BUCKETS = ("Weight DE/AE, AE/AO", "Input DE/AE, AE/AO",
                     "Output AO/AE, AE/DE")


def main() -> None:
    network = resnet18()
    results = reuse_study(
        network,
        AlbireoConfig(scenario=AGGRESSIVE),
        output_reuse_values=(3, 9, 15),
        input_reuse_values=(9, 27, 45),
        weight_lane_variants=(("Original", 1), ("More Weight Reuse", 3)),
    ).run()

    rows = []
    for record in results:
        evaluation = record.evaluation
        grouped = evaluation.total_energy.per_mac(
            evaluation.total_macs).grouped(SYSTEM_BUCKETS)
        converters = sum(grouped.get(bucket, 0.0)
                         for bucket in CONVERTER_BUCKETS)
        rows.append((
            record["variant"], record["output_reuse"],
            record["input_reuse"],
            f"{record['energy_per_mac_pj']:.4f}",
            f"{converters:.4f}",
            f"{converters / record['energy_per_mac_pj']:.0%}",
        ))
    print(format_table(
        ("variant", "OR", "IR", "accel pJ/MAC", "converter pJ/MAC",
         "converter share"),
        rows, align_right=[False, True, True, True, True, True]))

    baseline = results[0]
    best = results.best("energy_per_mac_pj")
    print(f"\nbaseline : {baseline['variant']} OR={baseline['output_reuse']} "
          f"IR={baseline['input_reuse']} -> "
          f"{baseline['energy_per_mac_pj']:.4f} pJ/MAC")
    print(f"best     : {best['variant']} OR={best['output_reuse']} "
          f"IR={best['input_reuse']} -> {best['energy_per_mac_pj']:.4f} "
          f"pJ/MAC")
    print(f"accelerator energy reduction: "
          f"{1 - best['energy_per_mac_pj'] / baseline['energy_per_mac_pj']:.0%} "
          f"(paper: 31%)")
    print("\nNote the diminishing return from IR=27 to IR=45: the wider "
          "star coupler's excess optical loss raises laser power against "
          "the shrinking converter savings — reuse is not free.")


if __name__ == "__main__":
    main()
