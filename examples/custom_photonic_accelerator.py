#!/usr/bin/env python3
"""Build your own photonic accelerator from a declarative spec.

The library is not Albireo-specific: this example assembles a different
photonic design — a weight-stationary WDM crossbar in the spirit of
MRR-weight-bank accelerators, where weights are converted *once per tile*
into an analog sample-and-hold bank instead of streaming every cycle —
prices it with the same component library, maps ResNet18's workhorse layer
onto it with the generic mapper, and compares against Albireo.

It demonstrates the three extension points a user needs:

1. an :class:`Architecture` from a plain dict spec (JSON-compatible);
2. an :class:`EnergyTable` from the estimator plug-ins;
3. the generic :class:`Mapper` with custom constraints.

Run:  python examples/custom_photonic_accelerator.py
"""

from repro import (
    AGGRESSIVE,
    AcceleratorModel,
    AlbireoConfig,
    AlbireoSystem,
    ComponentSpec,
    ConvLayer,
    Mapper,
    architecture_from_dict,
    build_table,
)
from repro.report import format_table

#: 16 tiles x (16x16 ring crossbar) = 4096 MACs/cycle at 5 GHz.
CROSSBAR_SPEC = {
    "name": "wdm-crossbar",
    "clock_ghz": 5.0,
    "nodes": [
        {"type": "storage", "name": "DRAM", "component": "dram",
         "domain": "DE", "dataspaces": ["Weights", "Inputs", "Outputs"]},
        {"type": "storage", "name": "GlobalBuffer", "component": "gbuf",
         "domain": "DE", "dataspaces": ["Weights", "Inputs", "Outputs"],
         "capacity_bits": 8.0 * 1024 * 1024},
        {"type": "fanout", "name": "tiles", "size": 16,
         "allowed_dims": ["M", "C", "P", "Q", "N"],
         "multicast": ["Inputs", "Weights"]},
        # Weights are DAC'd into an analog hold bank and reused for a
        # whole tile sweep: the weight-stationary trick.
        {"type": "converter", "name": "WeightDAC", "component": "wdac",
         "from": "DE", "to": "AE", "dataspaces": ["Weights"]},
        {"type": "storage", "name": "WeightBank", "component": "whold",
         "domain": "AE", "dataspaces": ["Weights"],
         "capacity_bits": 16 * 16 * 8.0},
        {"type": "converter", "name": "InputDAC", "component": "idac",
         "from": "DE", "to": "AE", "dataspaces": ["Inputs"]},
        {"type": "converter", "name": "InputMod", "component": "imod",
         "from": "AE", "to": "AO", "dataspaces": ["Inputs"]},
        # Input rows broadcast across the M columns of the crossbar.
        {"type": "fanout", "name": "columns", "size": 16,
         "allowed_dims": ["M"], "multicast": ["Inputs"]},
        {"type": "converter", "name": "OutputADC", "component": "oadc",
         "from": "AE", "to": "DE", "dataspaces": ["Outputs"]},
        # Each column's photodiode sums 16 wavelength channels (C).
        {"type": "converter", "name": "OutputPD", "component": "opd",
         "from": "AO", "to": "AE", "dataspaces": ["Outputs"]},
        {"type": "fanout", "name": "rows", "size": 16,
         "allowed_dims": ["C"], "reduction": ["Outputs"]},
        {"type": "compute", "name": "RingMAC", "component": "ring_mac",
         "domain": "AO",
         "actions": [{"component": "comb_laser", "action": "mac",
                      "events_per_mac": 1.0}]},
    ],
}


def build_crossbar():
    scenario = AGGRESSIVE
    architecture = architecture_from_dict(CROSSBAR_SPEC)
    table = build_table([
        ComponentSpec("dram", "dram", {}),
        ComponentSpec("gbuf", "sram", {"capacity_bits": 8.0 * 2 ** 23,
                                       "banks": 32}),
        ComponentSpec("wdac", "dac",
                      {"energy_pj_at_8bit": scenario.dac_pj_at_8bit}),
        ComponentSpec("whold", "analog_integrator", {}),
        ComponentSpec("idac", "dac",
                      {"energy_pj_at_8bit": scenario.dac_pj_at_8bit}),
        ComponentSpec("imod", "mzm", {"energy_pj": scenario.mzm_pj}),
        ComponentSpec("opd", "photodiode",
                      {"energy_pj": scenario.photodiode_pj}),
        ComponentSpec("oadc", "adc",
                      {"fom_fj_per_step": scenario.adc_fom_fj_per_step,
                       "sample_rate_gsps": 5.0}),
        ComponentSpec("ring_mac", "constant", {"actions": ("mac",)}),
        ComponentSpec("comb_laser", "laser", {
            "detector_fj": scenario.detector_fj,
            "wall_plug_efficiency": scenario.laser_wall_plug_efficiency,
            "fixed_loss_db": scenario.fixed_loss_db,
            "broadcast_ports": 16,
        }),
    ])
    return AcceleratorModel(architecture, table)


def main() -> None:
    layer = ConvLayer(name="resnet.layer2", m=128, c=128, p=28, q=28,
                      r=3, s=3)
    crossbar = build_crossbar()
    mapper = Mapper(crossbar.architecture,
                    cost_fn=crossbar.energy_cost_fn(layer))
    search = mapper.search(layer, max_evaluations=600, seed=0)
    crossbar_eval = crossbar.evaluate_layer(layer, search.mapping)

    albireo = AlbireoSystem(AlbireoConfig(scenario=AGGRESSIVE))
    albireo_eval = albireo.evaluate_layer(layer)

    rows = []
    for name, ev in (("wdm-crossbar", crossbar_eval),
                     ("albireo", albireo_eval)):
        rows.append((name, f"{ev.energy_per_mac_pj:.4f}",
                     f"{ev.macs_per_cycle:.0f}",
                     f"{ev.utilization:.0%}"))
    print(f"Layer: {layer.describe()}\n")
    print(format_table(("system", "pJ/MAC", "MACs/cycle", "util"), rows,
                       align_right=[False, True, True, True]))

    weight_events = [
        value for (component, _), value
        in crossbar_eval.energy.entries().items() if component == "WeightDAC"
    ]
    print(f"\nThe crossbar's weight-stationary bank cuts weight DAC energy "
          f"to {sum(weight_events):.1f} pJ for the whole layer — the "
          f"mapper found the weight-reuse schedule on its own "
          f"({search.valid}/{search.evaluated} candidates valid).")
    print("Same component library, same mapper, different architecture: "
          "the comparison workflow the paper advocates.")


if __name__ == "__main__":
    main()
