#!/usr/bin/env python3
"""Throughput study: which DNN shapes fit a photonic fabric?

Reproduces the paper's Fig. 3 narrative and extends it: Albireo's
locally-connected 3x3 window fabric runs VGG16 near its 6480-MACs/cycle
ideal, while AlexNet's strided 11x11 stem and large fully-connected layers
leave most of the photonic hardware dark.  LeNet-5 is included to show the
same analysis scales down to tiny workloads.

Run:  python examples/throughput_study.py
"""

from repro import AlbireoConfig, AlbireoSystem, alexnet, lenet5, vgg16
from repro.report import bar, format_table


def main() -> None:
    system = AlbireoSystem(AlbireoConfig())
    peak = system.config.peak_macs_per_cycle
    print(f"Albireo peak: {peak} MACs/cycle "
          f"@ {system.config.clock_ghz:g} GHz\n")

    for network in (vgg16(), alexnet(), lenet5()):
        evaluation = system.evaluate_network(network)
        print(f"{network.name}: {evaluation.macs_per_cycle:.0f} MACs/cycle "
              f"({evaluation.utilization:.0%} of peak), "
              f"{evaluation.latency_ns / 1e6:.3f} ms/inference")
        rows = []
        for layer_eval, count in evaluation.layers:
            label = layer_eval.layer.name
            kind = ("FC" if layer_eval.layer.is_fully_connected else
                    "strided" if layer_eval.layer.is_strided else "conv")
            rows.append((
                f"x{count} {label}" if count > 1 else label,
                kind,
                f"{layer_eval.macs_per_cycle:.0f}",
                bar(layer_eval.macs_per_cycle, peak, width=30),
            ))
        print(format_table(("layer", "kind", "MACs/cyc", ""), rows,
                           align_right=[False, False, True, False]))
        print()

    print("The pattern the paper demonstrates: unstrided 3x3 convolutions "
          "(VGG16, most of ResNet) saturate the fabric; strided stems pay "
          "for discarded windows; FC layers use one window site in nine.")


if __name__ == "__main__":
    main()
