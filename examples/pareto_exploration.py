#!/usr/bin/env python3
"""Energy-vs-latency Pareto exploration of Albireo configurations.

Design-space exploration rarely has a single winner.  This example sweeps
cluster counts, reuse settings, and batch sizes, evaluates ResNet18 on
each configuration, and reports the Pareto frontier over (per-inference
energy, request latency):

* more clusters finish a batch sooner at roughly constant energy/MAC;
* more reuse (OR, WR) cuts conversion energy with no latency cost;
* batching amortizes weight DRAM fetches — less energy per inference —
  but a request now waits for the whole batch: the classic trade-off.

This is the third analysis workflow (besides validation and per-figure
studies) the paper positions the modeling tool for.

Run:  python examples/pareto_exploration.py
"""

from dataclasses import replace

from repro import AGGRESSIVE, AlbireoConfig, AlbireoSystem, resnet18
from repro.report import format_table
from repro.systems import pareto_frontier


def main() -> None:
    base = AlbireoConfig(scenario=AGGRESSIVE)
    points = []
    for batch in (1, 8):
        network = resnet18(batch=batch)
        for clusters in (8, 16, 32):
            for output_reuse, weight_lanes in ((3, 1), (9, 3)):
                config = replace(base, clusters=clusters,
                                 output_reuse=output_reuse,
                                 weight_lanes=weight_lanes)
                evaluation = AlbireoSystem(config).evaluate_network(network)
                points.append({
                    "config": config,
                    "batch": batch,
                    # A request waits for its whole batch.
                    "latency_ms": evaluation.latency_ns / 1e6,
                    "energy_uj": evaluation.energy_pj / 1e6 / batch,
                })

    frontier = {
        id(p) for p in pareto_frontier(
            points, lambda p: (p["energy_uj"], p["latency_ms"]))
    }
    rows = []
    for point in sorted(points, key=lambda p: p["latency_ms"]):
        config = point["config"]
        rows.append((
            config.clusters, config.output_reuse, config.weight_lanes,
            point["batch"],
            f"{point['latency_ms']:.2f}",
            f"{point['energy_uj']:.1f}",
            "*" if id(point) in frontier else "",
        ))
    print("ResNet18 across 12 Albireo configurations x 2 batch sizes "
          "(aggressive scaling).\nEnergy is per inference; latency is "
          "what one request waits.  * = Pareto-optimal\n")
    print(format_table(
        ("clusters", "OR", "WR", "batch", "latency ms",
         "energy uJ/inf", "Pareto"),
        rows, align_right=[True, True, True, True, True, True, False]))
    frontier_points = [p for p in points if id(p) in frontier]
    print(f"\n{len(frontier_points)} Pareto-optimal points: latency-first "
          f"serving wants the largest batch-1 array; energy-first serving "
          f"accepts ~8x request latency for the batched weight-fetch "
          f"amortization.")


if __name__ == "__main__":
    main()
