#!/usr/bin/env python3
"""Energy-vs-latency Pareto exploration of Albireo configurations.

Design-space exploration rarely has a single winner.  This example sweeps
cluster counts, reuse settings, and batch sizes, evaluates ResNet18 on
each configuration, and reports the Pareto frontier over (per-inference
energy, request latency):

* more clusters finish a batch sooner at roughly constant energy/MAC;
* more reuse (OR, WR) cuts conversion energy with no latency cost;
* batching amortizes weight DRAM fetches — less energy per inference —
  but a request now waits for the whole batch: the classic trade-off.

The 24 evaluations run through the sweep engine
(:mod:`repro.engine`): each (config, network) pair becomes a declarative
job, the executor fans the batch out over worker processes, and an
in-memory cache shares layer evaluations between jobs.  Point a ``cache``
directory at :func:`repro.engine.run_jobs` and a second run of this
script becomes near-instant.

Run:  python examples/pareto_exploration.py
"""

from dataclasses import replace

from repro import AGGRESSIVE, AlbireoConfig, resnet18
from repro.engine import EvaluationCache, make_job, pareto_frontier, run_jobs
from repro.report import format_table


def main() -> None:
    base = AlbireoConfig(scenario=AGGRESSIVE)
    jobs = []
    for batch in (1, 8):
        network = resnet18(batch=batch)
        for clusters in (8, 16, 32):
            for output_reuse, weight_lanes in ((3, 1), (9, 3)):
                config = replace(base, clusters=clusters,
                                 output_reuse=output_reuse,
                                 weight_lanes=weight_lanes)
                jobs.append(make_job(network, config,
                                     tags={"batch": batch}))

    # workers=2 exercises the process pool; results are identical to
    # workers=1, just faster on multi-core machines.
    evaluations = run_jobs(jobs, workers=2, cache=EvaluationCache())

    points = []
    for job, evaluation in zip(jobs, evaluations):
        batch = job.tag("batch")
        points.append({
            "config": job.config,
            "batch": batch,
            # A request waits for its whole batch.
            "latency_ms": evaluation.latency_ns / 1e6,
            "energy_uj": evaluation.energy_pj / 1e6 / batch,
        })

    frontier = {
        id(p) for p in pareto_frontier(
            points, lambda p: (p["energy_uj"], p["latency_ms"]))
    }
    rows = []
    for point in sorted(points, key=lambda p: p["latency_ms"]):
        config = point["config"]
        rows.append((
            config.clusters, config.output_reuse, config.weight_lanes,
            point["batch"],
            f"{point['latency_ms']:.2f}",
            f"{point['energy_uj']:.1f}",
            "*" if id(point) in frontier else "",
        ))
    print("ResNet18 across 12 Albireo configurations x 2 batch sizes "
          "(aggressive scaling).\nEnergy is per inference; latency is "
          "what one request waits.  * = Pareto-optimal\n")
    print(format_table(
        ("clusters", "OR", "WR", "batch", "latency ms",
         "energy uJ/inf", "Pareto"),
        rows, align_right=[True, True, True, True, True, True, False]))
    frontier_points = [p for p in points if id(p) in frontier]
    print(f"\n{len(frontier_points)} Pareto-optimal points: latency-first "
          f"serving wants the largest batch-1 array; energy-first serving "
          f"accepts ~8x request latency for the batched weight-fetch "
          f"amortization.")


if __name__ == "__main__":
    main()
