#!/usr/bin/env python3
"""Full-system study: when does DRAM dominate a photonic accelerator?

Reproduces the paper's Fig. 4 narrative on ResNet18: under aggressive
optical-device scaling the accelerator becomes so efficient that DRAM
dominates system energy, and system-level techniques — batching (amortize
weight fetches) and layer fusion (keep activations on chip) — are what
unlock the scaling benefits.

Run:  python examples/full_system_memory_study.py
"""

from repro import AGGRESSIVE, AlbireoConfig, CONSERVATIVE, SYSTEM_BUCKETS, \
    resnet18
from repro.api import memory_study
from repro.report import format_table, stacked_bar_chart


def main() -> None:
    network = resnet18()
    print(f"Workload: {network.name}, {network.total_macs / 1e9:.2f} GMACs, "
          f"{network.total_weight_bits / 8e6:.1f} MB of weights\n")

    results = memory_study(
        network,
        AlbireoConfig(),
        scenarios=(CONSERVATIVE, AGGRESSIVE),
        batch_sizes=(1, 8),
        fusion_options=(False, True),
    ).run()

    rows = []
    chart_rows = []
    for record in results:
        evaluation = record.evaluation
        grouped = evaluation.total_energy.per_mac(
            evaluation.total_macs).grouped(SYSTEM_BUCKETS)
        total = sum(grouped.values())
        rows.append((
            record["scenario"],
            "fused" if record["fused"] else "-",
            f"N={record['batch']}",
            f"{total:.3f}",
            f"{grouped['DRAM'] / total:.0%}",
        ))
        if record["scenario"] == "aggressive":
            fusion = "Fused" if record["fused"] else "Not Fused"
            batching = "Batched" if record["batch"] > 1 else "Non-Batched"
            chart_rows.append((f"{fusion}/{batching}", grouped))

    print(format_table(
        ("scaling", "fusion", "batch", "pJ/MAC", "DRAM share"), rows,
        align_right=[False, False, False, True, True]))

    print("\nAggressive-scaling breakdown (pJ/MAC):")
    print(stacked_bar_chart(chart_rows, width=48))

    aggressive = results.filter(scenario="aggressive")
    baseline = aggressive[0]["energy_per_mac_pj"]
    best = aggressive.best()["energy_per_mac_pj"]
    print(f"\nBatching + fusion reduce aggressive-system energy by "
          f"{1 - best / baseline:.0%} ({baseline / best:.1f}x) — the paper "
          f"reports 67% (3x).")


if __name__ == "__main__":
    main()
