#!/usr/bin/env python3
"""Roofline study: what actually limits a 32-TMAC/s photonic chip?

The paper's throughput analysis (Fig. 3) explains the gap *below* the
compute roof — utilization lost to workload shapes.  This example adds
the other roof: with realistic DRAM bandwidth, many layers never reach
the compute peak at all.  A 6480-MAC/cycle Albireo at 5 GHz consumes
operands faster than any DDR-class memory can deliver data with low
arithmetic intensity.

Run:  python examples/roofline_study.py
"""

from repro import AlbireoConfig, AlbireoSystem, alexnet, resnet18
from repro.model.roofline import network_roofline


def main() -> None:
    for bandwidth, label in ((25.6, "DDR4 (25.6 GB/s)"),
                             (256.0, "HBM2 (256 GB/s)")):
        system = AlbireoSystem(
            AlbireoConfig(dram_bandwidth_gbps=bandwidth))
        print(f"=== {label} ===")
        for network in (resnet18(), alexnet()):
            result = network_roofline(system, network)
            memory_bound = result.memory_bound_layers
            print(f"\n{network.name}: {len(memory_bound)} of "
                  f"{len(result.points)} unique layers memory-bound")
            print(result.table())
        print()

    print("Takeaways: batch-1 FC layers (intensity ~1 MAC/byte) are "
          "memory-bound even on HBM2; 3x3 convolutions (hundreds of "
          "MACs/byte) stay compute-bound on DDR4.  Batching and fusion "
          "(see full_system_memory_study.py) raise intensity and move "
          "layers back under the compute roof — the throughput face of "
          "the same coin as the paper's Fig. 4 energy story.")


if __name__ == "__main__":
    main()
