#!/usr/bin/env python3
"""Quickstart: model a photonic accelerator in ten lines.

Builds the Albireo photonic CNN accelerator under the conservative device
scaling, evaluates one ResNet18 convolution layer and then the whole
network, and prints energy breakdowns in the paper's two views.

Run:  python examples/quickstart.py
"""

from repro import (
    AlbireoConfig,
    AlbireoSystem,
    CONSERVATIVE,
    ConvLayer,
    FIG2_BUCKETS,
    SYSTEM_BUCKETS,
    resnet18,
)


def main() -> None:
    # 1. Build the system: architecture + priced component library + model.
    system = AlbireoSystem(AlbireoConfig(scenario=CONSERVATIVE))
    print(system.describe())
    print()

    # 2. Evaluate one layer (ResNet18's workhorse 3x3 convolution).
    layer = ConvLayer(name="layer2.conv", m=128, c=128, p=28, q=28, r=3, s=3)
    result = system.evaluate_layer(layer)
    print(f"{layer.describe()}")
    print(f"  energy     : {result.energy_per_mac_pj:.3f} pJ/MAC")
    print(f"  throughput : {result.macs_per_cycle:.0f} MACs/cycle "
          f"(utilization {result.utilization:.0%})")
    print(f"  latency    : {result.latency_ns / 1e3:.1f} us")
    print()

    # 3. Where does the energy go?  Component view (paper Fig. 2 buckets):
    print("Per-MAC energy by component:")
    print(result.energy.per_mac(result.real_macs).describe(FIG2_BUCKETS))
    print()

    # 4. Whole-network evaluation, conversion-path view (Fig. 4/5 buckets):
    network = resnet18()
    evaluation = system.evaluate_network(network)
    print(f"{network.name}: {evaluation.energy_per_mac_pj:.3f} pJ/MAC, "
          f"{evaluation.macs_per_cycle:.0f} MACs/cycle, "
          f"{evaluation.latency_ns / 1e6:.2f} ms/inference")
    print()
    print("Per-MAC energy by conversion path:")
    per_mac = evaluation.total_energy.per_mac(evaluation.total_macs)
    print(per_mac.describe(SYSTEM_BUCKETS))


if __name__ == "__main__":
    main()
