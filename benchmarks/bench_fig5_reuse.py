"""Benchmark: regenerate the paper's Fig. 5 (reuse exploration).

Sweeps the 18-point OR x IR x variant grid on aggressively-scaled Albireo
with ResNet18 and publishes the per-point breakdown plus the converter /
accelerator energy-reduction claims.
"""

from conftest import publish

from repro.experiments import fig5_reuse


def test_fig5_reuse_exploration(benchmark):
    result = benchmark.pedantic(fig5_reuse.run, rounds=2, iterations=1)
    publish("fig5_reuse", result.table())
    assert result.meets_paper_claims
    benchmark.extra_info["converter_reduction"] = round(
        result.converter_reduction, 3)
    benchmark.extra_info["accelerator_reduction"] = round(
        result.accelerator_reduction, 3)
    best = result.best
    benchmark.extra_info["best_point"] = (
        f"{best.variant} OR={best.output_reuse} IR={best.input_reuse}")
