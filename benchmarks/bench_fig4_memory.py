"""Benchmark: regenerate the paper's Fig. 4 (full-system memory study).

ResNet18 under {conservative, aggressive} x {batched, non-batched} x
{fused, not fused}; publishes the normalized stacked-bar table and the two
headline claims (DRAM share, combined 3x reduction).
"""

from conftest import publish

from repro.experiments import fig4_memory


def test_fig4_memory_exploration(benchmark):
    result = benchmark.pedantic(fig4_memory.run, rounds=2, iterations=1)
    publish("fig4_memory", result.table())
    assert result.meets_paper_claims
    benchmark.extra_info["aggressive_dram_share"] = round(
        result.dram_share("aggressive"), 3)
    benchmark.extra_info["conservative_dram_share"] = round(
        result.dram_share("conservative"), 3)
    benchmark.extra_info["combined_reduction"] = round(
        result.combined_reduction("aggressive"), 3)
