"""Benchmark: cross-system comparison (the paper's third use case).

Evaluates Albireo and the weight-stationary WDM crossbar over the
workload suite with one shared component library and publishes the
comparison table.
"""

from conftest import publish

from repro.experiments import system_comparison


def test_system_comparison(benchmark):
    result = benchmark.pedantic(system_comparison.run, rounds=2,
                                iterations=1)
    publish("system_comparison", result.table())
    assert result.expected_contrasts_hold
    resnet_albireo = result.row("albireo", "ResNet18")
    resnet_crossbar = result.row("crossbar", "ResNet18")
    benchmark.extra_info["albireo_resnet_pj_per_mac"] = round(
        resnet_albireo.energy_per_mac_pj, 4)
    benchmark.extra_info["crossbar_resnet_pj_per_mac"] = round(
        resnet_crossbar.energy_per_mac_pj, 4)
