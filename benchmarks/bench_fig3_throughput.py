"""Benchmark: regenerate the paper's Fig. 3 (VGG16 / AlexNet throughput).

Times whole-network throughput evaluation and publishes the
ideal/reported/modeled comparison with the per-layer utilization breakdown
that explains AlexNet's collapse.
"""

from conftest import publish

from repro.experiments import fig3_throughput


def test_fig3_throughput(benchmark):
    result = benchmark(fig3_throughput.run)
    publish("fig3_throughput", result.table())
    assert result.meets_paper_claims
    vgg = result.for_network("VGG16")
    alex = result.for_network("AlexNet")
    benchmark.extra_info["vgg16_macs_per_cycle"] = round(vgg.modeled)
    benchmark.extra_info["alexnet_macs_per_cycle"] = round(alex.modeled)
    benchmark.extra_info["vgg16_over_ideal"] = round(
        vgg.modeled_over_ideal, 3)
    benchmark.extra_info["alexnet_over_reported"] = round(
        alex.modeled_over_reported, 3)
