"""Benchmark: the sweep engine's cache and process-pool executor.

Quantifies the two speedups the engine exists for:

* **cached vs cold** — a second run against the same cache directory must
  report >90% hits and measurably lower wall time;
* **parallel vs serial** — a multi-worker run must match the serial
  results exactly (the timing win depends on core count, so only
  correctness is asserted).
"""

import time

from conftest import publish

from repro.engine import EvaluationCache, config_sweep_jobs, run_jobs
from repro.report import format_table
from repro.systems import AlbireoConfig
from repro.workloads import tiny_cnn

from dataclasses import replace


def _sweep_jobs(use_mapper=True):
    network = tiny_cnn()
    configs = [
        replace(AlbireoConfig(), clusters=clusters, output_reuse=output_reuse,
                star_ports=star_ports)
        for clusters in (4, 8, 16)
        for output_reuse in (3, 9)
        for star_ports in (9, 27)
    ]
    return config_sweep_jobs(network, configs, use_mapper=use_mapper)


def test_cached_vs_cold_sweep(tmp_path):
    """Second run against the same cache: >90% hits, lower wall time."""
    jobs = _sweep_jobs(use_mapper=True)

    cold_cache = EvaluationCache(str(tmp_path))
    start = time.perf_counter()
    cold = run_jobs(jobs, workers=1, cache=cold_cache)
    cold_seconds = time.perf_counter() - start

    warm_cache = EvaluationCache(str(tmp_path))
    start = time.perf_counter()
    warm = run_jobs(jobs, workers=1, cache=warm_cache)
    warm_seconds = time.perf_counter() - start

    stats = warm_cache.stats["results"]
    publish("engine_cache", format_table(
        ("metric", "value"),
        [
            ("sweep points", len(jobs)),
            ("cold wall time (s)", f"{cold_seconds:.3f}"),
            ("cached wall time (s)", f"{warm_seconds:.3f}"),
            ("speedup", f"{cold_seconds / warm_seconds:.0f}x"),
            ("cache hit rate", f"{stats.hit_rate:.1%}"),
        ],
    ))
    assert stats.hit_rate > 0.9
    assert warm_seconds < cold_seconds
    for a, b in zip(cold, warm):
        assert a.energy_pj == b.energy_pj


def test_parallel_vs_serial_sweep():
    """workers=4 returns identical numbers; report both wall times."""
    jobs = _sweep_jobs(use_mapper=False)

    start = time.perf_counter()
    serial = run_jobs(jobs, workers=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_jobs(jobs, workers=4)
    parallel_seconds = time.perf_counter() - start

    publish("engine_parallel", format_table(
        ("metric", "value"),
        [
            ("sweep points", len(jobs)),
            ("serial wall time (s)", f"{serial_seconds:.3f}"),
            ("4-worker wall time (s)", f"{parallel_seconds:.3f}"),
            ("identical results", all(
                a.energy_pj == b.energy_pj
                and a.total_cycles == b.total_cycles
                for a, b in zip(serial, parallel))),
        ],
    ))
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert a.energy_pj == b.energy_pj
        assert a.total_cycles == b.total_cycles


def test_single_job_cached_latency(benchmark, tmp_path):
    """Steady-state latency of a fully cached job lookup."""
    from repro.engine import make_job, run_job

    job = make_job(tiny_cnn(), AlbireoConfig())
    cache = EvaluationCache(str(tmp_path))
    run_job(job, cache)  # warm

    evaluation = benchmark(lambda: run_job(job, cache))
    assert evaluation.energy_pj > 0
