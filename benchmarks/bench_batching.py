"""Benchmark: the batching energy-latency curve (paper SIII.3 remark)."""

from conftest import publish

from repro.experiments import batching


def test_batching_curve(benchmark):
    result = benchmark.pedantic(batching.run, rounds=1, iterations=1)
    publish("batching", result.table())
    points = result.points
    # Energy per inference falls monotonically with batch...
    energies = [p.energy_uj_per_inference for p in points]
    assert energies == sorted(energies, reverse=True)
    # ...latency per request grows monotonically...
    latencies = [p.latency_ms_per_request for p in points]
    assert latencies == sorted(latencies)
    # ...weight-DRAM amortizes by an order of magnitude before buffer
    # capacity starts trading refetch against partial-sum spills.
    first, last = points[0], points[-1]
    amortization = first.weight_dram_pj_per_mac \
        / last.weight_dram_pj_per_mac
    assert amortization > 8.0
    # Returns diminish by batch 32 (the knee exists).
    assert result.amortization_saturated
    benchmark.extra_info["energy_floor_uj"] = round(
        result.energy_floor_uj, 1)
