"""Ablation: system-level extensions beyond the paper's figures.

* Optical (DO-domain) DRAM attachment vs the electrical DDR interface —
  the TPU-v4-style option the paper's introduction mentions.
* DRAM bandwidth: where the paper's compute-only throughput convention
  stops holding (batch-1 FC layers are memory-bound on DDR-class links).
* Workload sensitivity: MobileNetV1's depthwise/pointwise layers vs
  ResNet18 on a broadcast-photonic fabric.
"""

from conftest import publish

from repro.energy import AGGRESSIVE
from repro.report import format_table
from repro.systems import AlbireoConfig, AlbireoSystem, SYSTEM_BUCKETS
from repro.workloads import dense_layer, mobilenet_v1, resnet18


def test_ablation_optical_dram_io(benchmark):
    network = resnet18()

    def sweep():
        rows = []
        for optical in (False, True):
            config = AlbireoConfig(scenario=AGGRESSIVE,
                                   optical_dram_io=optical)
            system = AlbireoSystem(config)
            evaluation = system.evaluate_network(network)
            grouped = evaluation.total_energy.per_mac(
                evaluation.total_macs).grouped(SYSTEM_BUCKETS)
            total = sum(grouped.values())
            rows.append(("optical" if optical else "electrical (DDR4)",
                         round(total, 4), round(grouped["DRAM"], 4),
                         f"{grouped['DRAM'] / total:.0%}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("ablation_optical_io", format_table(
        ("DRAM attachment", "total pJ/MAC", "memory pJ/MAC", "share"),
        rows, align_right=[False, True, True, True]))
    electrical, optical = rows[0], rows[1]
    assert optical[2] < electrical[2]
    # Optical I/O halves the memory interface cost in this model.
    assert optical[2] / electrical[2] < 0.6


def test_ablation_dram_bandwidth(benchmark):
    fc = dense_layer("fc6", 4096, 4096)

    def sweep():
        rows = []
        for label, gbps in (("unbounded", None), ("DDR4 25.6", 25.6),
                            ("HBM2 256", 256.0), ("HBM3 819", 819.0)):
            config = AlbireoConfig(dram_bandwidth_gbps=gbps)
            evaluation = AlbireoSystem(config).evaluate_layer(fc)
            rows.append((label,
                         round(evaluation.macs_per_cycle, 1),
                         evaluation.bandwidth_bound_level or "compute"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("ablation_bandwidth", format_table(
        ("DRAM bandwidth (GB/s)", "FC MACs/cycle", "bound by"), rows,
        align_right=[False, True, False]))
    # Batch-1 FC is memory-bound on DDR-class links.
    assert rows[1][2] == "DRAM"
    # Throughput is monotone in bandwidth.
    throughput = [row[1] for row in rows[1:]]
    assert throughput == sorted(throughput)


def test_ablation_workload_sensitivity(benchmark):
    def sweep():
        system = AlbireoSystem(AlbireoConfig())
        rows = []
        for network in (resnet18(), mobilenet_v1()):
            evaluation = system.evaluate_network(network)
            rows.append((network.name,
                         round(evaluation.macs_per_cycle),
                         f"{evaluation.utilization:.0%}",
                         round(evaluation.energy_per_mac_pj, 3)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("ablation_workloads", format_table(
        ("network", "MACs/cycle", "utilization", "pJ/MAC"), rows,
        align_right=[False, True, True, True]))
    resnet_row, mobile_row = rows
    # Depthwise/pointwise layers starve the broadcast fabric.
    assert mobile_row[1] < 0.5 * resnet_row[1]
