"""Ablation: memory-system design choices.

Quantifies the global-buffer capacity sweep (reuse vs per-access energy)
and the DRAM technology sweep (how much the paper's "DRAM dominates
aggressive systems" conclusion depends on DDR4 assumptions).
"""

from conftest import publish

from repro.energy import AGGRESSIVE
from repro.report import format_table
from repro.systems import AlbireoConfig, AlbireoSystem, SYSTEM_BUCKETS
from repro.workloads import resnet18


def _system_buckets(config, network):
    system = AlbireoSystem(config)
    evaluation = system.evaluate_network(network)
    return evaluation.total_energy.per_mac(
        evaluation.total_macs).grouped(SYSTEM_BUCKETS)


def test_ablation_global_buffer_capacity(benchmark):
    network = resnet18()

    def sweep():
        rows = []
        for kib in (256, 512, 1024, 2048, 4096):
            config = AlbireoConfig(scenario=AGGRESSIVE,
                                   global_buffer_kib=kib)
            grouped = _system_buckets(config, network)
            total = sum(grouped.values())
            rows.append((kib, round(total, 4),
                         round(grouped["DRAM"], 4),
                         round(grouped["On-Chip Buffer"], 4)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("ablation_buffer", format_table(
        ("GB KiB", "total pJ/MAC", "DRAM pJ/MAC", "buffer pJ/MAC"), rows,
        align_right=[True] * 4))
    # Bigger buffers cost more per access...
    buffer_energy = [row[3] for row in rows]
    assert buffer_energy[-1] > buffer_energy[0]
    # ...but must not increase DRAM traffic.
    dram = [row[2] for row in rows]
    assert dram[-1] <= dram[0] * 1.001


def test_ablation_dram_technology(benchmark):
    network = resnet18()

    def sweep():
        rows = []
        for technology in ("ddr4", "lpddr4", "hbm2"):
            config = AlbireoConfig(scenario=AGGRESSIVE,
                                   dram_technology=technology)
            grouped = _system_buckets(config, network)
            total = sum(grouped.values())
            rows.append((technology, round(total, 4),
                         f"{grouped['DRAM'] / total:.0%}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("ablation_dram", format_table(
        ("DRAM tech", "total pJ/MAC", "DRAM share"), rows,
        align_right=[False, True, True]))
    # The conclusion softens but persists with better DRAM.
    shares = [float(row[2].rstrip("%")) for row in rows]
    assert shares[0] > shares[1] > shares[2]
    assert shares[2] > 10  # still a real share even with HBM2


def test_ablation_wavelength_count(benchmark):
    from repro.systems import albireo_best_case_layer

    def sweep():
        rows = []
        for wavelengths in (1, 3, 5, 8):
            config = AlbireoConfig(scenario=AGGRESSIVE,
                                   wavelengths=wavelengths)
            system = AlbireoSystem(config)
            layer = albireo_best_case_layer(config)
            evaluation = system.evaluate_layer(layer)
            grouped = evaluation.energy.per_mac(
                evaluation.real_macs).grouped(SYSTEM_BUCKETS)
            rows.append((wavelengths,
                         round(sum(grouped.values()), 4),
                         round(grouped["Output AO/AE, AE/DE"], 4),
                         config.peak_macs_per_cycle))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("ablation_wavelengths", format_table(
        ("wavelengths", "accel pJ/MAC", "output-conv pJ/MAC",
         "peak MACs/cycle"), rows, align_right=[True] * 4))
    # WDM parallelism amortizes photodiodes and ADCs.
    output_conversion = [row[2] for row in rows]
    assert output_conversion == sorted(output_conversion, reverse=True)
