"""Benchmarks: the analysis extensions (sensitivity, area, roofline).

Each publishes its table to ``benchmarks/results/`` alongside timings.
"""

from conftest import publish

from repro.experiments import sensitivity
from repro.model.area import system_area_report
from repro.model.roofline import network_roofline
from repro.systems import AlbireoConfig, AlbireoSystem, CrossbarConfig, \
    CrossbarSystem
from repro.workloads import alexnet


def test_sensitivity_tornado(benchmark):
    result = benchmark.pedantic(sensitivity.run, rounds=2, iterations=1)
    publish("sensitivity", result.table())
    assert result.most_sensitive == "fixed_loss_db"
    benchmark.extra_info["most_sensitive"] = result.most_sensitive


def test_area_reports(benchmark):
    def run():
        albireo = system_area_report(AlbireoSystem(AlbireoConfig()))
        crossbar = system_area_report(
            CrossbarSystem(CrossbarConfig()),
            reference_layer=alexnet().entries[2].layer)
        return albireo, crossbar

    albireo, crossbar = benchmark.pedantic(run, rounds=2, iterations=1)
    publish("area", albireo.table() + "\n\n" + crossbar.table())
    assert albireo.total_mm2 > 0 and crossbar.total_mm2 > 0
    benchmark.extra_info["albireo_mm2"] = round(albireo.total_mm2, 2)
    benchmark.extra_info["crossbar_mm2"] = round(crossbar.total_mm2, 2)


def test_roofline_alexnet(benchmark):
    system = AlbireoSystem(AlbireoConfig(dram_bandwidth_gbps=25.6))

    def run():
        return network_roofline(system, alexnet())

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    publish("roofline", result.table())
    # AlexNet's FC layers are memory-bound on DDR4-class bandwidth.
    assert any("fc" in name for name in result.memory_bound_layers)
    benchmark.extra_info["memory_bound_layers"] = \
        ",".join(result.memory_bound_layers)
