"""Ablation: data-converter design choices.

DESIGN.md calls out converter energy as the modeling focus; these ablations
quantify the two main converter knobs on the aggressively-scaled Albireo:

* ADC/DAC resolution (symbol precision) — energy per MAC vs bits;
* the analog integrator depth (OR beyond the paper's grid).
"""

import dataclasses

from conftest import publish

from repro.energy import AGGRESSIVE
from repro.report import format_table
from repro.systems import AlbireoConfig, AlbireoSystem, SYSTEM_BUCKETS, \
    albireo_best_case_layer


def _energy_per_mac(config):
    system = AlbireoSystem(config)
    layer = albireo_best_case_layer(config)
    evaluation = system.evaluate_layer(layer)
    return evaluation.energy.per_mac(evaluation.real_macs)


def test_ablation_symbol_resolution(benchmark):
    def sweep():
        rows = []
        for bits in (4, 6, 8, 10):
            config = AlbireoConfig(scenario=AGGRESSIVE, bits=bits)
            per_mac = _energy_per_mac(config)
            grouped = per_mac.grouped(SYSTEM_BUCKETS)
            converters = sum(v for k, v in grouped.items()
                             if "DE/AE" in k or "AO/AE" in k)
            rows.append((bits, round(per_mac.total_pj, 4),
                         round(converters, 4)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    publish("ablation_resolution", format_table(
        ("symbol bits", "total pJ/MAC", "converter pJ/MAC"), rows,
        align_right=[True, True, True]))
    # Converter energy must grow steeply (exponentially for the ADC term)
    # with resolution — the motivation for low-precision photonics.
    converter = [row[2] for row in rows]
    assert converter == sorted(converter)
    assert converter[-1] > 2 * converter[0]


def test_ablation_integrator_depth(benchmark):
    def sweep():
        rows = []
        for output_reuse in (1, 3, 9, 27, 45):
            config = AlbireoConfig(scenario=AGGRESSIVE,
                                   output_reuse=output_reuse)
            per_mac = _energy_per_mac(config)
            grouped = per_mac.grouped(SYSTEM_BUCKETS)
            rows.append((output_reuse, round(per_mac.total_pj, 4),
                         round(grouped["Output AO/AE, AE/DE"], 4)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    publish("ablation_integrator", format_table(
        ("OR", "total pJ/MAC", "output-conversion pJ/MAC"), rows,
        align_right=[True, True, True]))
    output_energy = [row[2] for row in rows]
    assert output_energy == sorted(output_energy, reverse=True)
