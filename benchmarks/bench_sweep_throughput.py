"""Benchmark: sweep-scheduler throughput on a cold multi-system grid.

Times the cold (empty-cache) 3-system default-grid ResNet18 sweep —
every registered system's `repro sweep` configuration grid in one batch
— through the three executor strategies:

* **serial** — one process, the in-process cache sharing sub-results;
* **whole-job, 4 workers** — the pre-planner executor (``plan=False``):
  each miss job evaluated whole by one worker, results and cache deltas
  shipped per job;
* **planner, 4 workers** — the two-phase scheduler: batch-deduplicated
  sub-tasks in config-affine chunks, parent-side assembly.

Every mode starts from a fresh in-memory cache and must reproduce the
serial results bit-for-bit.  The planner's dedup counters are recorded,
plus plan-only statistics for the paper's Fig. 4 / Fig. 5 grids (where
cross-job and repeated-geometry dedup must be non-zero).

A final :mod:`repro.obs`-traced planner run attributes the parallel
path's overhead by phase — pool spawn vs dispatch (pickle/submit/wait)
vs worker-side system rebuild vs actual compute vs parent-side assembly
— answering *why* the parallel sweep wins or loses on a given grid
(ROADMAP item 2).  The timed modes themselves run with tracing disabled,
so the medians are untouched by instrumentation.

Writes ``BENCH_sweep_throughput.json`` (with provenance metadata) at the
repository root and prints a summary table.  Runnable directly
(``PYTHONPATH=src python benchmarks/bench_sweep_throughput.py``) or via
pytest.
"""

from __future__ import annotations

import importlib.util
import pathlib
import statistics
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_sweep_throughput.json"

WORKERS = 4
REPEATS = 4


def _conftest():
    """The shared benchmark helpers, loaded by path: ``conftest`` is not
    an importable module name (pytest owns it, and tests/ has its own)."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", pathlib.Path(__file__).parent / "conftest.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _fresh_jobs(network):
    from repro.engine import default_grid_jobs

    # Jobs memoize identity hashes; rebuild per run so every mode pays
    # identical (cold) costs.
    return default_grid_jobs(network)


def _timed_run(network, reference, **run_kwargs):
    """One cold run: fresh jobs + fresh cache; verified bit-identical."""
    from repro.engine import EvaluationCache, run_jobs
    from repro.engine.codec import network_evaluation_to_dict

    cache = EvaluationCache()
    jobs = _fresh_jobs(network)
    start = time.perf_counter()
    results = run_jobs(jobs, cache=cache, **run_kwargs)
    seconds = time.perf_counter() - start
    if reference is not None:
        assert all(
            network_evaluation_to_dict(a) == network_evaluation_to_dict(b)
            for a, b in zip(reference, results)
        ), f"results diverged for {run_kwargs}"
    return seconds, results, cache


def _plan_only_stats(jobs):
    """Planner counters for a job list without executing anything."""
    from repro.engine import EvaluationCache, build_plan

    plan = build_plan(jobs, EvaluationCache(), workers=WORKERS)
    return {
        "jobs": len(jobs),
        "planned": plan.planned,
        "deduplicated": plan.deduplicated,
        "cache_hits": plan.cache_hits,
        "phase1_tasks": plan.phase1_tasks,
        "batches": len(plan.batches),
    }


def _traced_breakdown(network, reference) -> dict:
    """One extra planner run under an active tracer: where the parallel
    path's wall-clock goes, by phase.

    ``dispatch_self_s`` is the parent blocked on pickle/submit/result
    wait; ``worker_system_build_s`` is per-worker architecture/energy
    table rebuild (the cost whole-job dispatch pays per job and the
    planner amortizes per chunk); ``coverage`` is the share of the main
    lane's extent attributed to named spans.
    """
    from repro import obs

    with obs.tracing() as tracer:
        seconds, _results, _cache = _timed_run(network, reference,
                                               workers=WORKERS)
    trace = tracer.trace()
    summary = trace.summary()
    spans = summary["spans"]

    def total(name):
        return round(spans.get(name, {}).get("total_s", 0.0), 4)

    def self_time(name):
        return round(spans.get(name, {}).get("self_s", 0.0), 4)

    return {
        "traced_run_s": round(seconds, 4),
        "coverage": round(trace.main_lane_coverage(), 4),
        "plan_s": total("planner.build_plan"),
        "pool_spawn_s": total("executor.pool_spawn"),
        "dispatch_self_s": self_time("executor.dispatch"),
        "merge_s": total("executor.merge"),
        "assemble_s": total("run_jobs.assemble"),
        "worker_system_build_s": total("system.build"),
        "worker_compute_s": round(
            total("layer.evaluate") + total("mapper.search"), 4),
        "spans": {
            name: {"count": int(row["count"]),
                   "total_s": round(row["total_s"], 4),
                   "self_s": round(row["self_s"], 4)}
            for name, row in sorted(spans.items())
        },
    }


def run_benchmark(repeats: int = REPEATS) -> dict:
    from repro.energy import AGGRESSIVE, CONSERVATIVE
    from repro.engine import memory_sweep_jobs, reuse_sweep_jobs
    from repro.systems import AlbireoConfig
    from repro.workloads import resnet18

    network = resnet18()
    reference = _timed_run(network, None, workers=1)[1]

    modes = {
        "serial": {"workers": 1},
        "wholejob_workers4": {"workers": WORKERS, "plan": False},
        "planner_workers4": {"workers": WORKERS},
    }
    timings = {}
    planner_stats = None
    for mode, kwargs in modes.items():
        samples = []
        for _ in range(repeats):
            seconds, _results, cache = _timed_run(network, reference,
                                                  **kwargs)
            samples.append(seconds)
        timings[mode] = {
            "samples_s": [round(value, 4) for value in samples],
            "median_s": round(statistics.median(samples), 4),
            # Wall-clock noise on a shared machine is strictly additive,
            # so the minimum is the least-biased point estimate (the
            # same rationale as ``timeit``'s repeat/min idiom).
            "min_s": round(min(samples), 4),
        }
        if mode == "planner_workers4":
            planner_stats = cache.planner.to_dict()

    speedup = (timings["wholejob_workers4"]["min_s"]
               / timings["planner_workers4"]["min_s"])
    report = {
        "benchmark": "cold 3-system default-grid ResNet18 sweep",
        "jobs": len(_fresh_jobs(network)),
        "workers": WORKERS,
        "repeats": repeats,
        "timings": timings,
        "planner": planner_stats,
        "speedup_planner_vs_wholejob": round(speedup, 2),
        "overhead_breakdown": _traced_breakdown(network, reference),
        "grids": {
            "fig4_memory": _plan_only_stats(memory_sweep_jobs(
                network, AlbireoConfig(),
                scenarios=(CONSERVATIVE, AGGRESSIVE))),
            "fig5_reuse": _plan_only_stats(reuse_sweep_jobs(
                network, AlbireoConfig())),
        },
    }
    return report


def _print_report(report: dict) -> None:
    from repro.report import format_table

    rows = [(mode, f"{data['min_s']:.2f}", f"{data['median_s']:.2f}",
             " ".join(f"{value:.2f}" for value in data["samples_s"]))
            for mode, data in report["timings"].items()]
    print(format_table(("mode", "min s", "median s", "samples"), rows,
                       align_right=[False, True, True, False]))
    planner = report["planner"]
    print(f"planner: {planner['planned']} planned, "
          f"{planner['deduplicated']} deduplicated, "
          f"{planner['phase1_tasks']} executed "
          f"({planner['batches']} batches)")
    print(f"speedup (planner vs whole-job, workers={report['workers']}): "
          f"{report['speedup_planner_vs_wholejob']:.2f}x")
    breakdown = report["overhead_breakdown"]
    print(f"overhead (traced {breakdown['traced_run_s']:.2f}s run, "
          f"{breakdown['coverage']:.0%} attributed): "
          f"spawn {breakdown['pool_spawn_s']:.3f}s, "
          f"plan {breakdown['plan_s']:.3f}s, "
          f"dispatch {breakdown['dispatch_self_s']:.3f}s, "
          f"assemble {breakdown['assemble_s']:.3f}s | workers: "
          f"rebuild {breakdown['worker_system_build_s']:.3f}s, "
          f"compute {breakdown['worker_compute_s']:.3f}s")
    for grid, stats in report["grids"].items():
        print(f"{grid}: {stats['jobs']} jobs -> {stats['phase1_tasks']} "
              f"unique tasks ({stats['deduplicated']} deduplicated)")


def main() -> dict:
    report = run_benchmark()
    _conftest().write_bench_json(OUTPUT_PATH, report)
    _print_report(report)
    print(f"wrote {OUTPUT_PATH}")
    return report


def test_sweep_throughput_benchmark():
    """Pytest entry: the planner path must not lose to whole-job
    dispatch, the acceptance grids must show dedup, and the traced run
    must attribute (nearly) all of the main lane's wall-clock."""
    report = main()
    assert report["planner"]["deduplicated"] > 0
    assert report["grids"]["fig4_memory"]["deduplicated"] > 0
    assert report["grids"]["fig5_reuse"]["deduplicated"] > 0
    # Wall-clock ratios vary by machine/core count; the planner must at
    # least not regress the parallel path.
    assert report["speedup_planner_vs_wholejob"] >= 1.0
    assert report["overhead_breakdown"]["coverage"] >= 0.9


if __name__ == "__main__":
    main()
