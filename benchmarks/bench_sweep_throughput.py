"""Benchmark: sweep-scheduler throughput on a cold multi-system grid.

Times the cold (empty-cache) 3-system default-grid ResNet18 sweep —
every registered system's `repro sweep` configuration grid in one batch
— through the three executor strategies:

* **serial** — one process, the in-process cache sharing sub-results;
* **whole-job, 4 workers** — the pre-planner executor (``plan=False``):
  each miss job evaluated whole by one worker, results and cache deltas
  shipped per job;
* **planner, 4 workers** — the two-phase scheduler: batch-deduplicated
  sub-tasks in config-affine chunks, parent-side assembly.

Every mode starts from a fresh in-memory cache and must reproduce the
serial results bit-for-bit.  The planner's dedup counters are recorded,
plus plan-only statistics for the paper's Fig. 4 / Fig. 5 grids (where
cross-job and repeated-geometry dedup must be non-zero).

Writes ``BENCH_sweep_throughput.json`` at the repository root and prints
a summary table.  Runnable directly (``PYTHONPATH=src python
benchmarks/bench_sweep_throughput.py``) or via pytest.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_sweep_throughput.json"

WORKERS = 4
REPEATS = 4


def _fresh_jobs(network):
    from repro.engine import default_grid_jobs

    # Jobs memoize identity hashes; rebuild per run so every mode pays
    # identical (cold) costs.
    return default_grid_jobs(network)


def _timed_run(network, reference, **run_kwargs):
    """One cold run: fresh jobs + fresh cache; verified bit-identical."""
    from repro.engine import EvaluationCache, run_jobs
    from repro.engine.codec import network_evaluation_to_dict

    cache = EvaluationCache()
    jobs = _fresh_jobs(network)
    start = time.perf_counter()
    results = run_jobs(jobs, cache=cache, **run_kwargs)
    seconds = time.perf_counter() - start
    if reference is not None:
        assert all(
            network_evaluation_to_dict(a) == network_evaluation_to_dict(b)
            for a, b in zip(reference, results)
        ), f"results diverged for {run_kwargs}"
    return seconds, results, cache


def _plan_only_stats(jobs):
    """Planner counters for a job list without executing anything."""
    from repro.engine import EvaluationCache, build_plan

    plan = build_plan(jobs, EvaluationCache(), workers=WORKERS)
    return {
        "jobs": len(jobs),
        "planned": plan.planned,
        "deduplicated": plan.deduplicated,
        "cache_hits": plan.cache_hits,
        "phase1_tasks": plan.phase1_tasks,
        "batches": len(plan.batches),
    }


def run_benchmark(repeats: int = REPEATS) -> dict:
    from repro.energy import AGGRESSIVE, CONSERVATIVE
    from repro.engine import memory_sweep_jobs, reuse_sweep_jobs
    from repro.systems import AlbireoConfig
    from repro.workloads import resnet18

    network = resnet18()
    reference = _timed_run(network, None, workers=1)[1]

    modes = {
        "serial": {"workers": 1},
        "wholejob_workers4": {"workers": WORKERS, "plan": False},
        "planner_workers4": {"workers": WORKERS},
    }
    timings = {}
    planner_stats = None
    for mode, kwargs in modes.items():
        samples = []
        for _ in range(repeats):
            seconds, _results, cache = _timed_run(network, reference,
                                                  **kwargs)
            samples.append(seconds)
        timings[mode] = {
            "samples_s": [round(value, 4) for value in samples],
            "median_s": round(statistics.median(samples), 4),
            # Wall-clock noise on a shared machine is strictly additive,
            # so the minimum is the least-biased point estimate (the
            # same rationale as ``timeit``'s repeat/min idiom).
            "min_s": round(min(samples), 4),
        }
        if mode == "planner_workers4":
            planner_stats = {
                "planned": cache.planner.planned,
                "deduplicated": cache.planner.deduplicated,
                "cache_hits": cache.planner.cache_hits,
                "phase1_tasks": cache.planner.phase1_tasks,
                "batches": cache.planner.batches,
            }

    speedup = (timings["wholejob_workers4"]["min_s"]
               / timings["planner_workers4"]["min_s"])
    report = {
        "benchmark": "cold 3-system default-grid ResNet18 sweep",
        "jobs": len(_fresh_jobs(network)),
        "workers": WORKERS,
        "repeats": repeats,
        "timings": timings,
        "planner": planner_stats,
        "speedup_planner_vs_wholejob": round(speedup, 2),
        "grids": {
            "fig4_memory": _plan_only_stats(memory_sweep_jobs(
                network, AlbireoConfig(),
                scenarios=(CONSERVATIVE, AGGRESSIVE))),
            "fig5_reuse": _plan_only_stats(reuse_sweep_jobs(
                network, AlbireoConfig())),
        },
    }
    return report


def _print_report(report: dict) -> None:
    from repro.report import format_table

    rows = [(mode, f"{data['min_s']:.2f}", f"{data['median_s']:.2f}",
             " ".join(f"{value:.2f}" for value in data["samples_s"]))
            for mode, data in report["timings"].items()]
    print(format_table(("mode", "min s", "median s", "samples"), rows,
                       align_right=[False, True, True, False]))
    planner = report["planner"]
    print(f"planner: {planner['planned']} planned, "
          f"{planner['deduplicated']} deduplicated, "
          f"{planner['phase1_tasks']} executed "
          f"({planner['batches']} batches)")
    print(f"speedup (planner vs whole-job, workers={report['workers']}): "
          f"{report['speedup_planner_vs_wholejob']:.2f}x")
    for grid, stats in report["grids"].items():
        print(f"{grid}: {stats['jobs']} jobs -> {stats['phase1_tasks']} "
              f"unique tasks ({stats['deduplicated']} deduplicated)")


def main() -> dict:
    report = run_benchmark()
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    _print_report(report)
    print(f"wrote {OUTPUT_PATH}")
    return report


def test_sweep_throughput_benchmark():
    """Pytest entry: the planner path must not lose to whole-job
    dispatch, and the acceptance grids must show dedup."""
    report = main()
    assert report["planner"]["deduplicated"] > 0
    assert report["grids"]["fig4_memory"]["deduplicated"] > 0
    assert report["grids"]["fig5_reuse"]["deduplicated"] > 0
    # Wall-clock ratios vary by machine/core count; the planner must at
    # least not regress the parallel path.
    assert report["speedup_planner_vs_wholejob"] >= 1.0


if __name__ == "__main__":
    main()
