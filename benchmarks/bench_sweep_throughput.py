"""Benchmark: sweep-scheduler throughput on a cold multi-system grid.

Times the cold (empty-cache) 3-system default-grid ResNet18 sweep —
every registered system's `repro sweep` configuration grid in one batch
— through the three executor strategies:

* **serial** — one process, the in-process cache sharing sub-results;
* **whole-job, 4 workers** — the pre-planner executor (``plan=False``):
  each miss job evaluated whole by one worker, results and cache deltas
  shipped per job;
* **planner, 4 workers** — the two-phase scheduler: batch-deduplicated
  sub-tasks in config-affine chunks, parent-side assembly;
* **planner, 4 workers, warm pool** — the same scheduler dispatching to
  one persistent :class:`~repro.engine.pool.WorkerPool` that survives
  across runs (this PR's headline configuration): pool spawn and fork
  warmup amortize away while every run's caches stay cold.
* **planner, 4 workers, warm pool, fault policy** — identical to the
  warm-pool mode but with a retrying
  :class:`~repro.engine.executor.FailurePolicy` (task watchdog armed,
  failure capture on) and **no faults injected**: the no-fault overhead
  of the supervision/retry machinery, gated within a few percent of the
  unguarded warm-pool baseline by the pytest entry.

Every mode starts from a fresh in-memory cache and must reproduce the
serial results bit-for-bit.  The planner's dedup counters are recorded,
plus plan-only statistics for the paper's Fig. 4 / Fig. 5 grids (where
cross-job and repeated-geometry dedup must be non-zero).

A final :mod:`repro.obs`-traced planner run attributes the parallel
path's overhead by phase — pool spawn vs dispatch (pickle/submit/wait)
vs worker-side system rebuild vs actual compute vs parent-side assembly
— answering *why* the parallel sweep wins or loses on a given grid
(ROADMAP item 2).  The timed modes themselves run with tracing disabled,
so the medians are untouched by instrumentation.

A workers x grid-size **scaling curve** runs first (in the clean
process, before the mode loop grows the heap that every ephemeral
fork copies): serial vs planner@4 on synthetic config sweeps of
72 / 288 / 1008 jobs over a deep (384-entry) network, measuring how
the planner's advantage compounds with grid size (``BENCH_TIER=small``
stops at 288 jobs for CI).

A **cache-scaling** mode times persistence as the on-disk store grows
1x / 4x / 16x while the per-run dirty delta stays fixed: the legacy
single-image save/load scale with the total, while the sharded store's
delta flush and lazy warm-start open must stay flat (O(dirty) — the
asserted contract of ``repro.engine.store``).

Writes ``BENCH_sweep_throughput.json`` (with provenance metadata) at the
repository root and prints a summary table.  Runnable directly
(``PYTHONPATH=src python benchmarks/bench_sweep_throughput.py``) or via
pytest.
"""

from __future__ import annotations

import gc
import hashlib
import importlib.util
import os
import pathlib
import shutil
import statistics
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_sweep_throughput.json"

WORKERS = 4
#: Odd, so the median is an actual sample (robust to one outlier rep).
REPEATS = 5

#: Workers x grid-size scaling curve: job counts for the synthetic
#: config sweep.  ``BENCH_TIER=small`` (CI) stops at 288 jobs; the full
#: tier adds the 1000+-job point backing the speedup-at-scale claim.
SCALING_SIZES_SMALL = (72, 288)
SCALING_SIZES_FULL = SCALING_SIZES_SMALL + (1008,)
#: Layer entries in the synthetic network.  Deep networks amortize the
#: per-config phase-1 cost (two unique layer geometries plus one system
#: build per configuration) over many assembled entries, which is where
#: the planner's asymmetry — name-free dedup vs per-name serial
#: evaluation — pays off hardest: serial pays a full nest analysis per
#: *named* entry (~200us) while the planner pays only alias derivation
#: and assembly (~20us), so the ratio climbs with depth.
SCALING_ENTRIES = 384

#: Cache-scaling mode: persistence cost as the *store* grows while the
#: per-run delta stays fixed.  The store holds ``factor x base`` warm
#: entries; each timed flush adds the same ``CACHE_DIRTY`` new ones.
CACHE_SCALING_FACTORS = (1, 4, 16)
CACHE_BASE_ENTRIES = 200
CACHE_DIRTY = 24
CACHE_REPEATS = 3


def _conftest():
    """The shared benchmark helpers, loaded by path: ``conftest`` is not
    an importable module name (pytest owns it, and tests/ has its own)."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", pathlib.Path(__file__).parent / "conftest.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _fresh_jobs(network):
    from repro.engine import default_grid_jobs

    # Jobs memoize identity hashes; rebuild per run so every mode pays
    # identical (cold) costs.
    return default_grid_jobs(network)


def _timed_run(network, reference, **run_kwargs):
    """One cold run: fresh jobs + fresh cache; verified bit-identical."""
    from repro.engine import EvaluationCache, run_jobs
    from repro.engine.codec import network_evaluation_to_dict

    cache = EvaluationCache()
    jobs = _fresh_jobs(network)
    # Collect before, not during: a mid-run gen-2 pass would land on
    # whichever mode happened to trigger it.
    gc.collect()
    start = time.perf_counter()
    results = run_jobs(jobs, cache=cache, **run_kwargs)
    seconds = time.perf_counter() - start
    if reference is not None:
        assert all(
            network_evaluation_to_dict(a) == network_evaluation_to_dict(b)
            for a, b in zip(reference, results)
        ), f"results diverged for {run_kwargs}"
    return seconds, results, cache


def synthetic_network(entries: int = SCALING_ENTRIES):
    """A deep synthetic network: ``entries`` conv layers alternating two
    geometries under distinct names (``conv000``, ``conv001``, ...).

    Distinct names are the point: the serial path memoizes per layer
    *name*, so it evaluates every entry, while the planner dedups by
    geometry and derives the siblings by renaming — the same shape
    ResNet18's repeated blocks exhibit, exaggerated to benchmark scale.
    """
    from repro.workloads import ConvLayer
    from repro.workloads.network import LayerRepetition, Network

    shapes = (dict(m=64, c=64, p=32, q=32, r=3, s=3),
              dict(m=48, c=32, p=14, q=14, r=3, s=3))
    return Network(
        name=f"synth{entries}",
        entries=tuple(
            LayerRepetition(
                layer=ConvLayer(name=f"conv{index:03d}",
                                **shapes[index % 2]),
                consumes_previous_output=(index > 0))
            for index in range(entries)))


def synthetic_grid_jobs(network, count: int):
    """``count`` distinct Albireo configurations over ``network`` — a
    pure config sweep (every configuration is a separate system key, so
    nothing dedups *across* configs; the planner's win is within-config
    geometry dedup plus chunked dispatch)."""
    from dataclasses import replace

    from repro.engine import config_sweep_jobs
    from repro.systems import AlbireoConfig

    configs = [replace(AlbireoConfig(),
                       clusters=(4, 8, 16, 32)[index % 4],
                       output_reuse=1 + index // 4)
               for index in range(count)]
    return config_sweep_jobs(network, configs)


def _scaling_point(network, count: int, repeats: int) -> dict:
    """Serial vs planner@WORKERS on a ``count``-job synthetic grid.

    Results are spot-checked bit-identical (head and tail of the batch)
    rather than exhaustively — the exhaustive contract lives in the
    equivalence tests; re-encoding 1000+ deep evaluations twice would
    dominate the benchmark itself.
    """
    from repro.engine import EvaluationCache, run_jobs
    from repro.engine.codec import network_evaluation_to_dict

    def sample(results):
        return [network_evaluation_to_dict(result)
                for result in results[:8] + results[-8:]]

    serial_samples, planner_samples = [], []
    reference = None
    for _ in range(repeats):
        jobs = synthetic_grid_jobs(network, count)
        gc.collect()
        start = time.perf_counter()
        results = run_jobs(jobs, workers=1, cache=EvaluationCache())
        serial_samples.append(time.perf_counter() - start)
        if reference is None:
            reference = sample(results)
        # Free the previous rep's result set (hundreds of thousands of
        # objects at 1000 jobs) before the next timed run: keeping it
        # alive would tax the next run's GC passes and — for the
        # planner — every fork, biasing whichever strategy runs later.
        del results, jobs
    for _ in range(repeats):
        jobs = synthetic_grid_jobs(network, count)
        gc.collect()
        start = time.perf_counter()
        results = run_jobs(jobs, workers=WORKERS, cache=EvaluationCache())
        planner_samples.append(time.perf_counter() - start)
        assert sample(results) == reference, \
            f"planner diverged from serial at {count} jobs"
        del results, jobs
    serial_s = statistics.median(serial_samples)
    planner_s = statistics.median(planner_samples)
    return {
        "jobs": count,
        "entries": len(network.entries),
        "serial_samples_s": [round(value, 3) for value in serial_samples],
        "planner4_samples_s": [round(value, 3) for value in planner_samples],
        "serial_s": round(serial_s, 3),
        "planner4_s": round(planner_s, 3),
        "speedup": round(serial_s / planner_s, 2),
    }


def _scaling_curve(sizes) -> dict:
    """The workers x grid-size scaling curve over the synthetic grids."""
    from repro.engine import EvaluationCache, run_jobs

    network = synthetic_network()
    # Untimed warmups: pay module imports and code-object warmup before
    # the first timed sample, once per strategy, on a tiny grid.
    warmup = synthetic_grid_jobs(network, 2)
    run_jobs(warmup, workers=1, cache=EvaluationCache())
    run_jobs(synthetic_grid_jobs(network, 2), workers=WORKERS,
             cache=EvaluationCache())
    points = []
    for count in sizes:
        # One repeat at the large sizes: a 1000-job serial run is close
        # to a minute, and the serial/planner gap there is far larger
        # than run-to-run noise.
        repeats = 2 if count <= 300 else 1
        points.append(_scaling_point(network, count, repeats))
    return {
        "network": network.name,
        "entries": len(network.entries),
        "workers": WORKERS,
        "tier": "small" if sizes == SCALING_SIZES_SMALL else "full",
        "points": points,
    }


def _cache_key(tag) -> str:
    return hashlib.sha256(str(tag).encode("utf-8")).hexdigest()


def _cache_entry(index: int) -> dict:
    """A result-sized synthetic entry (~300 bytes encoded)."""
    return {"index": index, "energy_pj": index * 1.5,
            "latency_ns": index * 2.0,
            "pad": "p" * 240}


def _seed_cache(directory: str, entries: int, backend: str) -> None:
    from repro.engine import EvaluationCache

    cache = EvaluationCache(directory, backend=backend)
    for index in range(entries):
        cache.put("results", _cache_key(("warm", index)),
                  _cache_entry(index))
    cache.save()


def _cache_scaling_point(factor: int) -> dict:
    """Persistence timings at ``factor x CACHE_BASE_ENTRIES`` warm
    entries, fixed ``CACHE_DIRTY`` delta.

    * ``legacy_save_s`` — full-image rewrite after the delta (the old
      backend: O(total)).
    * ``legacy_load_s`` — eager whole-image parse at open (O(total)).
    * ``sharded_flush_s`` — delta append of the same dirty set
      (O(dirty): must stay flat as the factor grows).
    * ``sharded_open_s`` — warm-start open: index only, shards lazy
      (must stay flat too).

    Minimum of ``CACHE_REPEATS`` runs: wall-clock noise (and a stray
    slow fsync) is additive, so min is the least-biased estimate.
    """
    from repro.engine import EvaluationCache

    entries = factor * CACHE_BASE_ENTRIES
    point = {"factor": factor, "entries": entries}
    counter = [0]

    def dirty_batch():
        counter[0] += 1
        return [(_cache_key(("dirty", counter[0], i)), _cache_entry(i))
                for i in range(CACHE_DIRTY)]

    for backend in ("legacy", "sharded"):
        directory = tempfile.mkdtemp(prefix=f"bench-cache-{backend}-")
        try:
            _seed_cache(directory, entries, backend)
            opens, saves = [], []
            for _ in range(CACHE_REPEATS):
                gc.collect()
                start = time.perf_counter()
                cache = EvaluationCache(directory, backend=backend)
                opens.append(time.perf_counter() - start)
                for key, value in dirty_batch():
                    cache.put("results", key, value)
                gc.collect()
                start = time.perf_counter()
                cache.save()
                saves.append(time.perf_counter() - start)
            if backend == "legacy":
                point["legacy_load_s"] = round(min(opens), 4)
                point["legacy_save_s"] = round(min(saves), 4)
            else:
                point["sharded_open_s"] = round(min(opens), 4)
                point["sharded_flush_s"] = round(min(saves), 4)
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return point


def _cache_scaling() -> dict:
    """Save/load wall time as the store grows 1x -> 4x -> 16x with a
    fixed dirty delta: the legacy image scales with the total, the
    sharded store's open and flush must stay flat."""
    points = [_cache_scaling_point(factor)
              for factor in CACHE_SCALING_FACTORS]
    return {
        "base_entries": CACHE_BASE_ENTRIES,
        "dirty_entries": CACHE_DIRTY,
        "repeats": CACHE_REPEATS,
        "points": points,
    }


def _plan_only_stats(jobs):
    """Planner counters for a job list without executing anything."""
    from repro.engine import EvaluationCache, build_plan

    plan = build_plan(jobs, EvaluationCache(), workers=WORKERS)
    return {
        "jobs": len(jobs),
        "planned": plan.planned,
        "deduplicated": plan.deduplicated,
        "cache_hits": plan.cache_hits,
        "phase1_tasks": plan.phase1_tasks,
        "batches": len(plan.batches),
    }


def _traced_breakdown(network, reference) -> dict:
    """One extra planner run under an active tracer: where the parallel
    path's wall-clock goes, by phase.

    ``dispatch_self_s`` is the parent-side pickle/submit/decode
    overhead; ``wait_s`` is the parent blocked on the worker result
    stream (worker compute, not overhead — carved out of dispatch so
    the two are not conflated); ``worker_system_build_s`` is per-worker
    architecture/energy table rebuild (the cost whole-job dispatch pays
    per job and the planner amortizes per chunk); ``coverage`` is the
    share of the main lane's extent attributed to named spans.
    """
    from repro import obs

    with obs.tracing() as tracer:
        seconds, _results, _cache = _timed_run(network, reference,
                                               workers=WORKERS)
    trace = tracer.trace()
    summary = trace.summary()
    spans = summary["spans"]

    def total(name):
        return round(spans.get(name, {}).get("total_s", 0.0), 4)

    def self_time(name):
        return round(spans.get(name, {}).get("self_s", 0.0), 4)

    return {
        "traced_run_s": round(seconds, 4),
        "coverage": round(trace.main_lane_coverage(), 4),
        "plan_s": total("planner.build_plan"),
        "pool_spawn_s": total("executor.pool_spawn"),
        "dispatch_self_s": self_time("executor.dispatch"),
        "wait_s": total("executor.wait"),
        "merge_s": total("executor.merge"),
        "assemble_s": total("run_jobs.assemble"),
        "worker_system_build_s": total("system.build"),
        "worker_compute_s": round(
            total("layer.evaluate") + total("mapper.search"), 4),
        "spans": {
            name: {"count": int(row["count"]),
                   "total_s": round(row["total_s"], 4),
                   "self_s": round(row["self_s"], 4)}
            for name, row in sorted(spans.items())
        },
    }


def run_benchmark(repeats: int = REPEATS) -> dict:
    from repro.energy import AGGRESSIVE, CONSERVATIVE
    from repro.engine import memory_sweep_jobs, reuse_sweep_jobs
    from repro.systems import AlbireoConfig
    from repro.workloads import resnet18

    from repro.engine import WorkerPool

    network = resnet18()
    # The scaling curve goes first: its large grids are the cleanest
    # measurement in a fresh process (every later ephemeral fork copies
    # whatever heap the mode loop has grown by then, taxing the planner
    # side only).
    sizes = (SCALING_SIZES_SMALL
             if os.environ.get("BENCH_TIER", "").lower() == "small"
             else SCALING_SIZES_FULL)
    scaling = _scaling_curve(sizes)

    # The reference run doubles as the serial warmup; one untimed
    # parallel run warms the pool/fork path the same way, so neither
    # strategy's first timed sample carries process-cold costs (module
    # imports, code-object warmup, decode memos).  Every timed run is
    # still cache-cold: fresh jobs, fresh EvaluationCache.
    reference = _timed_run(network, None, workers=1)[1]
    _timed_run(network, reference, workers=WORKERS)

    pool = WorkerPool(WORKERS)
    try:
        # Warm the persistent pool once; its workers then survive every
        # ``planner_workers4_warmpool`` sample below — the PR's headline
        # configuration: pool spawn and fork warmup amortized away,
        # caches still cold per run.
        _timed_run(network, reference, workers=WORKERS, pool=pool)
        from repro.engine import FailurePolicy

        modes = {
            "serial": {"workers": 1},
            "wholejob_workers4": {"workers": WORKERS, "plan": False},
            "planner_workers4": {"workers": WORKERS},
            "planner_workers4_warmpool": {"workers": WORKERS,
                                          "pool": pool},
            # Supervision/retry machinery armed, zero faults injected:
            # measures the no-fault overhead of fault tolerance (the
            # per-sub-task watchdog + failure capture + quarantine
            # lookups), still verified bit-identical to serial.
            "planner_workers4_warmpool_faultpolicy": {
                "workers": WORKERS, "pool": pool,
                "failure_policy": FailurePolicy(
                    on_error="retry", max_retries=2, task_timeout=120.0)},
        }
        samples = {mode: [] for mode in modes}
        planner_stats = None
        # Interleave the modes within each repeat and rotate which mode
        # leads, so slow host drift and neighbor effects (a preceding
        # run's heap growth taxing the next fork) land evenly on every
        # mode instead of penalizing whichever ran last.
        names = list(modes)
        for repeat in range(repeats):
            shift = repeat % len(names)
            for mode in names[shift:] + names[:shift]:
                seconds, _results, cache = _timed_run(network, reference,
                                                      **modes[mode])
                samples[mode].append(seconds)
                if mode == "planner_workers4":
                    planner_stats = cache.planner.to_dict()
        pool_stats = pool.stats.to_dict()
    finally:
        pool.close()
    timings = {}
    for mode in modes:
        timings[mode] = {
            "samples_s": [round(value, 4) for value in samples[mode]],
            "median_s": round(statistics.median(samples[mode]), 4),
            # Wall-clock noise on a shared machine is strictly additive,
            # so the minimum is the least-biased point estimate (the
            # same rationale as ``timeit``'s repeat/min idiom).
            "min_s": round(min(samples[mode]), 4),
        }

    speedup = (timings["wholejob_workers4"]["min_s"]
               / timings["planner_workers4"]["min_s"])
    report = {
        "benchmark": "cold 3-system default-grid ResNet18 sweep",
        "jobs": len(_fresh_jobs(network)),
        "workers": WORKERS,
        "repeats": repeats,
        "timings": timings,
        "planner": planner_stats,
        "speedup_planner_vs_wholejob": round(speedup, 2),
        "speedup_planner_vs_serial": round(
            timings["serial"]["min_s"]
            / timings["planner_workers4"]["min_s"], 2),
        "speedup_warmpool_vs_serial": round(
            timings["serial"]["median_s"]
            / timings["planner_workers4_warmpool"]["median_s"], 2),
        "fault_policy_overhead_pct": round(
            100.0 * (timings["planner_workers4_warmpool_faultpolicy"]
                     ["median_s"]
                     / timings["planner_workers4_warmpool"]["median_s"]
                     - 1.0), 2),
        "pool": pool_stats,
        "overhead_breakdown": _traced_breakdown(network, reference),
        "scaling": scaling,
        "cache_scaling": _cache_scaling(),
        "grids": {
            "fig4_memory": _plan_only_stats(memory_sweep_jobs(
                network, AlbireoConfig(),
                scenarios=(CONSERVATIVE, AGGRESSIVE))),
            "fig5_reuse": _plan_only_stats(reuse_sweep_jobs(
                network, AlbireoConfig())),
        },
    }
    return report


def _print_report(report: dict) -> None:
    from repro.report import format_table

    rows = [(mode, f"{data['min_s']:.2f}", f"{data['median_s']:.2f}",
             " ".join(f"{value:.2f}" for value in data["samples_s"]))
            for mode, data in report["timings"].items()]
    print(format_table(("mode", "min s", "median s", "samples"), rows,
                       align_right=[False, True, True, False]))
    planner = report["planner"]
    print(f"planner: {planner['planned']} planned, "
          f"{planner['deduplicated']} deduplicated, "
          f"{planner['phase1_tasks']} executed "
          f"({planner['batches']} batches)")
    print(f"speedup (planner vs whole-job, workers={report['workers']}): "
          f"{report['speedup_planner_vs_wholejob']:.2f}x")
    print(f"speedup (planner vs serial, workers={report['workers']}): "
          f"{report['speedup_planner_vs_serial']:.2f}x")
    pool = report["pool"]
    print(f"speedup (warm-pool planner vs serial, median): "
          f"{report['speedup_warmpool_vs_serial']:.2f}x "
          f"(pool: {pool['spawns']} spawns, {pool['dispatches']} "
          f"dispatches, {pool['delta_syncs']} delta syncs)")
    print(f"fault-policy overhead (no faults, warm pool, median): "
          f"{report['fault_policy_overhead_pct']:+.1f}%")
    breakdown = report["overhead_breakdown"]
    print(f"overhead (traced {breakdown['traced_run_s']:.2f}s run, "
          f"{breakdown['coverage']:.0%} attributed): "
          f"spawn {breakdown['pool_spawn_s']:.3f}s, "
          f"plan {breakdown['plan_s']:.3f}s, "
          f"dispatch {breakdown['dispatch_self_s']:.3f}s, "
          f"wait {breakdown['wait_s']:.3f}s, "
          f"assemble {breakdown['assemble_s']:.3f}s | workers: "
          f"rebuild {breakdown['worker_system_build_s']:.3f}s, "
          f"compute {breakdown['worker_compute_s']:.3f}s")
    for grid, stats in report["grids"].items():
        print(f"{grid}: {stats['jobs']} jobs -> {stats['phase1_tasks']} "
              f"unique tasks ({stats['deduplicated']} deduplicated)")
    scaling = report["scaling"]
    print(f"scaling ({scaling['tier']} tier, "
          f"{scaling['entries']}-entry {scaling['network']}):")
    for point in scaling["points"]:
        print(f"  {point['jobs']:>5} jobs: serial {point['serial_s']:.2f}s, "
              f"planner@{scaling['workers']} {point['planner4_s']:.2f}s "
              f"-> {point['speedup']:.2f}x")
    cache_scaling = report["cache_scaling"]
    print(f"cache scaling ({cache_scaling['dirty_entries']}-entry dirty "
          f"delta):")
    for point in cache_scaling["points"]:
        print(f"  {point['entries']:>5} warm entries: legacy save "
              f"{point['legacy_save_s'] * 1e3:.1f}ms / load "
              f"{point['legacy_load_s'] * 1e3:.1f}ms | sharded flush "
              f"{point['sharded_flush_s'] * 1e3:.1f}ms / open "
              f"{point['sharded_open_s'] * 1e3:.1f}ms")


def main() -> dict:
    report = run_benchmark()
    _conftest().write_bench_json(OUTPUT_PATH, report)
    _print_report(report)
    print(f"wrote {OUTPUT_PATH}")
    return report


def test_sweep_throughput_benchmark():
    """Pytest entry: parallel must strictly beat serial on the cold
    default grid, the synthetic curve must show the at-scale win, the
    acceptance grids must show dedup, parent-side dispatch overhead
    must stay a small fraction of the run, and the traced run must
    attribute (nearly) all of the main lane's wall-clock."""
    report = main()
    assert report["planner"]["deduplicated"] > 0
    assert report["grids"]["fig4_memory"]["deduplicated"] > 0
    assert report["grids"]["fig5_reuse"]["deduplicated"] > 0
    # The planner must not regress the parallel path, and — the point
    # of the warm-pool/slim-wire/vectorized work — must strictly beat
    # serial even on the small cold grid, median to median.
    assert report["speedup_planner_vs_wholejob"] >= 1.0
    # Strictly-beats-serial, median to median, on the cold default
    # grid.  Asserted on the warm-pool planner mode — the configuration
    # this PR ships (a persistent pool amortizes spawn/fork overhead;
    # the caches are still cold every run).  On a single-core runner
    # the win is purely algorithmic (geometry dedup + slim dispatch),
    # so the margin is a few percent; the warm pool is what keeps it
    # strictly positive.
    timings = report["timings"]
    assert (timings["planner_workers4_warmpool"]["median_s"]
            < timings["serial"]["median_s"]), \
        "warm-pool planner@4 must strictly beat serial on the cold grid"
    # Fault tolerance must be (nearly) free when nothing faults: the
    # policy-armed warm-pool run — watchdog timers, failure capture,
    # quarantine lookups, supervised result wait — stays within 3% of
    # the unguarded warm-pool median (plus a small absolute floor for
    # scheduler jitter on sub-second runs).
    guarded = timings["planner_workers4_warmpool_faultpolicy"]["median_s"]
    baseline = timings["planner_workers4_warmpool"]["median_s"]
    assert guarded <= 1.03 * baseline + 0.05, \
        (f"no-fault policy overhead too high: guarded {guarded:.3f}s vs "
         f"baseline {baseline:.3f}s "
         f"({report['fault_policy_overhead_pct']:+.1f}%)")
    # At 1000+ jobs the asymmetry compounds: geometry dedup plus slim
    # chunked dispatch must clear 5x over serial.
    for point in report["scaling"]["points"]:
        assert point["speedup"] > 1.0, point
        if point["jobs"] >= 1000:
            assert point["speedup"] >= 5.0, point
    breakdown = report["overhead_breakdown"]
    assert breakdown["coverage"] >= 0.9
    # Parent-side dispatch overhead (pickle/submit/decode, excluding
    # the blocked-on-workers wait) must stay under 30% of the traced
    # run: the wire is slim enough that the parent is not the engine's
    # bottleneck.
    assert (breakdown["dispatch_self_s"]
            < 0.3 * breakdown["traced_run_s"]), breakdown
    # Cache persistence must be O(delta), not O(total): with a fixed
    # dirty set, the sharded flush and the warm-start open at 16x the
    # store size must stay within noise of the 1x cost (generous
    # floors absorb scheduler jitter and a stray slow fsync on shared
    # CI disks), while the legacy image's save/load grow with the
    # total by construction.
    points = {point["factor"]: point
              for point in report["cache_scaling"]["points"]}
    one, sixteen = points[1], points[16]
    assert sixteen["sharded_flush_s"] < max(
        0.05, 5.0 * max(one["sharded_flush_s"], 0.002)), points
    assert sixteen["sharded_open_s"] < max(
        0.05, 5.0 * max(one["sharded_open_s"], 0.002)), points


if __name__ == "__main__":
    main()
