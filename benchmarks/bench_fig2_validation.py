"""Benchmark: regenerate the paper's Fig. 2 (energy-breakdown validation).

Times the full model pipeline (architecture build, energy estimation,
reference-mapping selection, nest analysis, pricing) across the three
scaling scenarios, and publishes the modeled-vs-reported table.
"""

from conftest import publish

from repro.experiments import fig2_validation


def test_fig2_energy_breakdown_validation(benchmark):
    result = benchmark(fig2_validation.run)
    publish("fig2_validation", result.table())
    assert result.meets_paper_claim
    benchmark.extra_info["average_error"] = result.average_error
    benchmark.extra_info["conservative_pj_per_mac"] = \
        result.validations[0].modeled_total
    benchmark.extra_info["aggressive_pj_per_mac"] = \
        result.validations[2].modeled_total
