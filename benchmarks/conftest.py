"""Shared benchmark plumbing.

Each figure benchmark renders its paper-comparable table and both prints it
(visible with ``pytest -s``) and writes it to ``benchmarks/results/`` so a
benchmark run leaves reviewable artifacts next to the timing numbers.
Benchmarks that persist machine-readable ``BENCH_*.json`` reports write
them through :func:`write_bench_json`, which stamps :func:`provenance`
metadata (git commit, interpreter, platform, UTC timestamp) so a checked-in
number can always be traced to the tree and machine that produced it.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import platform
import subprocess

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def provenance() -> dict:
    """Where/when/on-what a benchmark number was produced."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        commit = None
    return {
        "git_commit": commit,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timestamp_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
    }


def write_bench_json(path, report: dict) -> None:
    """Persist a ``BENCH_*.json`` report with provenance stamped in."""
    stamped = dict(report)
    stamped["provenance"] = provenance()
    pathlib.Path(path).write_text(json.dumps(stamped, indent=2) + "\n")
