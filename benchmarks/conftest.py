"""Shared benchmark plumbing.

Each figure benchmark renders its paper-comparable table and both prints it
(visible with ``pytest -s``) and writes it to ``benchmarks/results/`` so a
benchmark run leaves reviewable artifacts next to the timing numbers.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
