"""Benchmark: mapper and analysis throughput (the paper's "fast DSE" claim).

The paper argues the modeling approach enables *rapid* design-space
exploration; these benchmarks quantify it: single-mapping analysis latency
and full mapper-search latency on a representative ResNet18 layer.
"""

from conftest import publish

from repro.mapping.analysis import SearchContext, analyze
from repro.report import format_table
from repro.systems import AlbireoConfig, AlbireoSystem
from repro.systems.albireo import albireo_mapping_candidates
from repro.workloads import ConvLayer

LAYER = ConvLayer(name="resnet-conv", m=128, c=128, p=28, q=28, r=3, s=3)


def test_single_mapping_analysis(benchmark):
    system = AlbireoSystem(AlbireoConfig())
    mapping = system.reference_mapping(LAYER)

    def run():
        return analyze(system.architecture, LAYER, mapping)

    counts = benchmark(run)
    assert counts.padded_macs >= LAYER.macs
    benchmark.extra_info["evaluations_per_second_hint"] = \
        "see ops/sec column"


def test_analysis_shared_context_across_mappings(benchmark):
    """The reference-mapping pricing pattern: many mappings, one context."""
    system = AlbireoSystem(AlbireoConfig())
    mappings = albireo_mapping_candidates(system.config, LAYER)
    context = SearchContext.for_layer(system.architecture, LAYER)

    def run():
        return [analyze(system.architecture, LAYER, mapping,
                        context=context) for mapping in mappings]

    results = benchmark(run)
    assert len(results) == len(mappings)


def test_layer_evaluation_with_pricing(benchmark):
    system = AlbireoSystem(AlbireoConfig())
    mapping = system.reference_mapping(LAYER)

    def run():
        return system.evaluate_layer(LAYER, mapping=mapping)

    evaluation = benchmark(run)
    assert evaluation.energy_pj > 0


def test_mapper_search_200_candidates(benchmark):
    system = AlbireoSystem(AlbireoConfig())

    def run():
        return system.search_mapping(LAYER, max_evaluations=200, seed=0)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    publish("mapper_speed", format_table(
        ("metric", "value"),
        [
            ("candidates evaluated", result.evaluated),
            ("valid mappings", result.valid),
            ("duplicates skipped", result.deduplicated),
            ("pruned early", result.pruned_early),
            ("best energy (pJ)", f"{result.cost:.1f}"),
        ],
    ))
    assert result.valid > 0


def test_whole_network_evaluation(benchmark):
    from repro.workloads import resnet18

    system = AlbireoSystem(AlbireoConfig())
    network = resnet18()

    def run():
        return system.evaluate_network(network)

    evaluation = benchmark.pedantic(run, rounds=3, iterations=1)
    assert evaluation.total_macs == network.total_macs
